#include "bist/tpg.hpp"

#include <gtest/gtest.h>

#include "bist/input_cube.hpp"
#include "circuits/s27.hpp"
#include "circuits/synth.hpp"

namespace fbt {
namespace {

TEST(InputCube, BuffersBlockHasNoSpecifiedInputs) {
  const Netlist nl = make_buffers_block(8);
  const InputCube cube = compute_input_cube(nl);
  EXPECT_EQ(cube.specified_count(), 0u);  // no state variables to synchronize
}

TEST(InputCube, S27FavoursTheLessSynchronizingValue) {
  const Netlist nl = make_s27();
  const InputCube cube = compute_input_cube(nl);
  // G0 = 0 synchronizes G10 (via G14 = 1); G0 = 1 synchronizes nothing.
  // So 1 synchronizes fewer state variables and C(G0) = 1.
  EXPECT_EQ(cube.values[0], Val3::k1);
}

TEST(Tpg, ShiftRegisterSizeFollowsTheFormula) {
  const Netlist nl = make_s27();
  const TpgConfig cfg{.lfsr_stages = 32, .bias_bits = 3};
  const Tpg tpg(nl, cfg);
  const std::size_t nsp = tpg.cube().specified_count();
  EXPECT_EQ(tpg.shift_register_size(),
            3 * nsp + (nl.num_inputs() - nsp));
  EXPECT_EQ(tpg.bias_gate_count(), nsp);
}

TEST(Tpg, DeterministicPerSeed) {
  const Netlist nl = make_s27();
  Tpg a(nl, {});
  Tpg b(nl, {});
  a.reseed(42);
  b.reseed(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_vector(), b.next_vector());
  }
  a.reseed(42);
  b.reseed(43);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    if (a.next_vector() != b.next_vector()) differs = true;
  }
  EXPECT_TRUE(differs);
}

// Property (Fig. 4.8): a specified input takes its cube value with
// probability about 1 - 1/2^m; an unspecified input is roughly balanced.
TEST(Tpg, BiasFollowsTheCube) {
  SynthParams p;
  p.name = "tpg_bias";
  p.num_inputs = 12;
  p.num_outputs = 6;
  p.num_flops = 20;
  p.num_gates = 260;
  p.seed = 15;
  const Netlist nl = generate_synthetic(p);
  const TpgConfig cfg{.lfsr_stages = 32, .bias_bits = 3};
  Tpg tpg(nl, cfg);
  tpg.reseed(777);
  const std::size_t trials = 30000;
  std::vector<std::size_t> ones(nl.num_inputs(), 0);
  for (std::size_t t = 0; t < trials; ++t) {
    const auto vec = tpg.next_vector();
    for (std::size_t i = 0; i < vec.size(); ++i) ones[i] += vec[i];
  }
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    const double p1 = static_cast<double>(ones[i]) / trials;
    switch (tpg.cube().values[i]) {
      case Val3::k0:
        EXPECT_NEAR(p1, 1.0 / 8.0, 0.03) << "input " << i;
        break;
      case Val3::k1:
        EXPECT_NEAR(p1, 7.0 / 8.0, 0.03) << "input " << i;
        break;
      case Val3::kX:
        EXPECT_NEAR(p1, 0.5, 0.05) << "input " << i;
        break;
    }
  }
}

TEST(Tpg, ReseedReinitializesTheShiftRegister) {
  const Netlist nl = make_s27();
  Tpg tpg(nl, {});
  tpg.reseed(5);
  std::vector<std::vector<std::uint8_t>> first;
  for (int i = 0; i < 20; ++i) first.push_back(tpg.next_vector());
  tpg.reseed(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(tpg.next_vector(), first[i]) << "cycle " << i;
  }
}

}  // namespace
}  // namespace fbt
