#include "bist/misr.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace fbt {
namespace {

TEST(Misr, DeterministicSignature) {
  Misr a(16);
  Misr b(16);
  Pcg32 rng(9);
  for (int cycle = 0; cycle < 200; ++cycle) {
    std::vector<std::uint8_t> response;
    for (int i = 0; i < 10; ++i) response.push_back(rng.chance(1, 2));
    a.absorb(response);
    b.absorb(response);
  }
  EXPECT_EQ(a.signature(), b.signature());
}

TEST(Misr, SingleBitFlipChangesSignature) {
  Pcg32 rng(10);
  std::vector<std::vector<std::uint8_t>> stream;
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::vector<std::uint8_t> response;
    for (int i = 0; i < 8; ++i) response.push_back(rng.chance(1, 2));
    stream.push_back(std::move(response));
  }
  Misr golden(16);
  for (const auto& r : stream) golden.absorb(r);

  // Flip each bit of the stream in turn: the signature must change (a single
  // flip is never aliased by a linear compactor).
  for (std::size_t c = 0; c < stream.size(); ++c) {
    for (std::size_t i = 0; i < stream[c].size(); ++i) {
      Misr m(16);
      for (std::size_t k = 0; k < stream.size(); ++k) {
        auto r = stream[k];
        if (k == c) r[i] ^= 1;
        m.absorb(r);
      }
      EXPECT_NE(m.signature(), golden.signature())
          << "cycle " << c << " bit " << i;
    }
  }
}

TEST(Misr, WideResponsesFoldOntoStages) {
  Misr m(8);
  std::vector<std::uint8_t> wide(20, 0);
  wide[3] = 1;
  wide[11] = 1;  // 11 mod 8 == 3: cancels bit 3
  m.absorb(wide);
  Misr empty(8);
  empty.absorb(std::vector<std::uint8_t>(20, 0));
  EXPECT_EQ(m.signature(), empty.signature());
}

TEST(Misr, ResetClearsState) {
  Misr m(12);
  m.absorb(std::vector<std::uint8_t>{1, 0, 1});
  EXPECT_NE(m.signature(), 0u);
  m.reset();
  EXPECT_EQ(m.signature(), 0u);
}

}  // namespace
}  // namespace fbt
