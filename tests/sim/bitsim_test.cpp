#include "sim/bitsim.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "circuits/synth.hpp"
#include "sim/seqsim.hpp"
#include "sim/value.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

TEST(BitSim, EvaluatesS27KnownVector) {
  const Netlist nl = make_s27();
  BitSim sim(nl);
  // All inputs 0, all state 0.
  for (const NodeId pi : nl.inputs()) sim.set_value(pi, 0);
  for (const NodeId ff : nl.flops()) sim.set_value(ff, 0);
  sim.eval();
  // G14 = NOT(G0) = 1; G11 = NOR(G5, G9); G9 = NAND(G16, G15);
  // G8 = AND(G14, G6) = 0; G12 = NOR(G1, G7) = 1; G15 = OR(G12, G8) = 1;
  // G16 = OR(G3, G8) = 0 -> G9 = NAND(0,1) = 1 -> G11 = NOR(0,1) = 0;
  // G17 = NOT(G11) = 1.
  EXPECT_EQ(sim.value(nl.find("G14")), ~0ULL);
  EXPECT_EQ(sim.value(nl.find("G8")), 0ULL);
  EXPECT_EQ(sim.value(nl.find("G12")), ~0ULL);
  EXPECT_EQ(sim.value(nl.find("G9")), ~0ULL);
  EXPECT_EQ(sim.value(nl.find("G11")), 0ULL);
  EXPECT_EQ(sim.value(nl.find("G17")), ~0ULL);
}

// Property: the 64 lanes are independent -- packing 64 random vectors and
// evaluating once agrees with SeqSim evaluating each vector separately.
TEST(BitSim, LanesMatchScalarSimulation) {
  SynthParams p;
  p.name = "lanes";
  p.num_inputs = 9;
  p.num_outputs = 5;
  p.num_flops = 7;
  p.num_gates = 160;
  p.seed = 11;
  const Netlist nl = generate_synthetic(p);

  Pcg32 rng(123);
  std::vector<std::vector<std::uint8_t>> pis(64);
  std::vector<std::vector<std::uint8_t>> states(64);
  for (int lane = 0; lane < 64; ++lane) {
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      pis[lane].push_back(rng.chance(1, 2));
    }
    for (std::size_t i = 0; i < nl.num_flops(); ++i) {
      states[lane].push_back(rng.chance(1, 2));
    }
  }

  BitSim bits(nl);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    std::uint64_t w = 0;
    for (int lane = 0; lane < 64; ++lane) {
      if (pis[lane][i]) w |= 1ULL << lane;
    }
    bits.set_value(nl.inputs()[i], w);
  }
  for (std::size_t i = 0; i < nl.num_flops(); ++i) {
    std::uint64_t w = 0;
    for (int lane = 0; lane < 64; ++lane) {
      if (states[lane][i]) w |= 1ULL << lane;
    }
    bits.set_value(nl.flops()[i], w);
  }
  bits.eval();

  SeqSim scalar(nl);
  for (int lane = 0; lane < 64; ++lane) {
    scalar.load_state(states[lane]);
    scalar.step(pis[lane]);
    for (NodeId id = 0; id < nl.size(); ++id) {
      EXPECT_EQ((bits.value(id) >> lane) & 1u, scalar.value(id))
          << "node " << nl.gate(id).name << " lane " << lane;
    }
  }
}

// Property: fault_propagate agrees with brute-force re-evaluation under the
// forced value.
TEST(BitSim, FaultPropagateMatchesBruteForce) {
  SynthParams p;
  p.name = "prop";
  p.num_inputs = 8;
  p.num_outputs = 6;
  p.num_flops = 5;
  p.num_gates = 140;
  p.seed = 21;
  const Netlist nl = generate_synthetic(p);

  Pcg32 rng(55);
  BitSim sim(nl);
  for (int trial = 0; trial < 40; ++trial) {
    for (const NodeId pi : nl.inputs()) sim.set_value(pi, rng.next64());
    for (const NodeId ff : nl.flops()) sim.set_value(ff, rng.next64());
    sim.eval();

    const NodeId site = static_cast<NodeId>(rng.below(
        static_cast<std::uint32_t>(nl.size())));
    if (nl.type(site) == GateType::kConst0 ||
        nl.type(site) == GateType::kConst1) {
      continue;
    }
    const std::uint64_t forced = rng.next64();
    const std::uint64_t detect = sim.fault_propagate(site, forced);

    // Brute force: re-evaluate a fresh simulator with the site forced.
    BitSim ref(nl);
    for (const NodeId pi : nl.inputs()) ref.set_value(pi, sim.value(pi));
    for (const NodeId ff : nl.flops()) ref.set_value(ff, sim.value(ff));
    ref.eval();
    std::vector<std::uint64_t> forced_vals(nl.size());
    for (NodeId id = 0; id < nl.size(); ++id) forced_vals[id] = ref.value(id);
    forced_vals[site] = forced;
    std::vector<std::uint64_t> fanins;
    for (const NodeId id : nl.eval_order()) {
      if (id == site) continue;
      fanins.clear();
      for (const NodeId f : nl.gate(id).fanins) {
        fanins.push_back(forced_vals[f]);
      }
      forced_vals[id] = eval_gate64(nl.type(id), fanins);
    }
    std::uint64_t expected = 0;
    for (const NodeId po : nl.outputs()) {
      expected |= forced_vals[po] ^ sim.value(po);
    }
    for (const NodeId ff : nl.flops()) {
      const NodeId d = nl.dff_input(ff);
      expected |= forced_vals[d] ^ sim.value(d);
    }
    EXPECT_EQ(detect, expected) << "site " << nl.gate(site).name;
    // The fault-free values must be untouched by propagation.
    for (NodeId id = 0; id < nl.size(); ++id) {
      EXPECT_EQ(sim.value(id), ref.value(id));
    }
  }
}

TEST(BitSim, NextStateReadsFlopDInputs) {
  const Netlist nl = make_s27();
  BitSim sim(nl);
  for (const NodeId pi : nl.inputs()) sim.set_value(pi, 0);
  for (const NodeId ff : nl.flops()) sim.set_value(ff, 0);
  sim.eval();
  std::vector<std::uint64_t> ns(nl.num_flops());
  sim.next_state(ns);
  for (std::size_t i = 0; i < nl.num_flops(); ++i) {
    EXPECT_EQ(ns[i], sim.value(nl.dff_input(nl.flops()[i])));
  }
}

}  // namespace
}  // namespace fbt
