#include "sim/value.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

const GateType kCombTypes[] = {GateType::kBuf,  GateType::kNot,
                               GateType::kAnd,  GateType::kNand,
                               GateType::kOr,   GateType::kNor,
                               GateType::kXor,  GateType::kXnor};

class GateEvalConsistency : public ::testing::TestWithParam<GateType> {};

// Property: eval_gate2 (scalar), eval_gate64 (bit-parallel), and eval_gate3
// (three-valued with binary operands) agree on every binary input combination
// up to 4 fanins.
TEST_P(GateEvalConsistency, BinaryDomainsAgree) {
  const GateType type = GetParam();
  const std::size_t max_fanin =
      (type == GateType::kBuf || type == GateType::kNot) ? 1 : 4;
  const std::size_t min_fanin = max_fanin == 1 ? 1 : 2;
  for (std::size_t n = min_fanin; n <= max_fanin; ++n) {
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
      std::vector<std::uint8_t> in2;
      std::vector<std::uint64_t> in64;
      std::vector<Val3> in3;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t b = (bits >> i) & 1u;
        in2.push_back(b);
        in64.push_back(b ? ~0ULL : 0);
        in3.push_back(b ? Val3::k1 : Val3::k0);
      }
      const std::uint8_t r2 = eval_gate2(type, in2);
      const std::uint64_t r64 = eval_gate64(type, in64);
      const Val3 r3 = eval_gate3(type, in3);
      EXPECT_EQ(r64, r2 ? ~0ULL : 0) << gate_type_name(type) << " bits=" << bits;
      EXPECT_EQ(r3, r2 ? Val3::k1 : Val3::k0)
          << gate_type_name(type) << " bits=" << bits;
    }
  }
}

// Property: three-valued evaluation is a sound abstraction -- if the result
// with some inputs X is binary, then every completion of the X inputs yields
// that same binary value.
TEST_P(GateEvalConsistency, XAbstractionIsSound) {
  const GateType type = GetParam();
  if (type == GateType::kBuf || type == GateType::kNot) return;
  Pcg32 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng.range(2, 4);
    std::vector<Val3> in3;
    std::vector<std::size_t> x_positions;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r = rng.below(3);
      in3.push_back(static_cast<Val3>(r));
      if (in3.back() == Val3::kX) x_positions.push_back(i);
    }
    const Val3 abstract = eval_gate3(type, in3);
    if (abstract == Val3::kX) continue;
    for (std::uint32_t fill = 0; fill < (1u << x_positions.size()); ++fill) {
      std::vector<std::uint8_t> in2;
      std::size_t xi = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (in3[i] == Val3::kX) {
          in2.push_back((fill >> xi++) & 1u);
        } else {
          in2.push_back(in3[i] == Val3::k1 ? 1 : 0);
        }
      }
      EXPECT_EQ(eval_gate2(type, in2), abstract == Val3::k1 ? 1 : 0)
          << gate_type_name(type);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGateTypes, GateEvalConsistency,
                         ::testing::ValuesIn(kCombTypes),
                         [](const auto& info) {
                           return std::string(gate_type_name(info.param));
                         });

TEST(Value, ConstantsEvaluate) {
  EXPECT_EQ(eval_gate2(GateType::kConst0, {}), 0);
  EXPECT_EQ(eval_gate2(GateType::kConst1, {}), 1);
  EXPECT_EQ(eval_gate64(GateType::kConst1, {}), ~0ULL);
  EXPECT_EQ(eval_gate3(GateType::kConst0, {}), Val3::k0);
}

TEST(Value, SourcesHaveNoFunction) {
  EXPECT_THROW(eval_gate2(GateType::kInput, {}), Error);
  EXPECT_THROW(eval_gate3(GateType::kDff, {}), Error);
}

TEST(Value, Not3) {
  EXPECT_EQ(not3(Val3::k0), Val3::k1);
  EXPECT_EQ(not3(Val3::k1), Val3::k0);
  EXPECT_EQ(not3(Val3::kX), Val3::kX);
}

}  // namespace
}  // namespace fbt
