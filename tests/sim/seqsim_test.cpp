#include "sim/seqsim.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "test_circuits.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

TEST(SeqSim, ToggleCircuitCountsCorrectly) {
  const Netlist nl = testing::make_toggle_circuit();
  SeqSim sim(nl);
  sim.load_reset_state();
  std::vector<std::uint8_t> one{1};
  std::vector<std::uint8_t> zero{0};
  // nxt = in XOR ff; with in=1 the flop toggles every cycle.
  sim.step(one);
  EXPECT_EQ(sim.state()[0], 1);
  sim.step(one);
  EXPECT_EQ(sim.state()[0], 0);
  sim.step(zero);
  EXPECT_EQ(sim.state()[0], 0);  // in=0, ff=0 -> nxt=0
}

TEST(SeqSim, FirstCycleHasUndefinedSwa) {
  const Netlist nl = testing::make_toggle_circuit();
  SeqSim sim(nl);
  sim.load_reset_state();
  const SeqStep first = sim.step(std::vector<std::uint8_t>{1});
  EXPECT_EQ(first.toggled_lines, 0u);  // SWA(0) undefined -> reported as 0
  const SeqStep second = sim.step(std::vector<std::uint8_t>{1});
  EXPECT_GT(second.toggled_lines, 0u);
}

TEST(SeqSim, SwitchingActivityCountsToggledLines) {
  const Netlist nl = testing::make_toggle_circuit();
  SeqSim sim(nl);
  sim.load_reset_state();
  sim.step(std::vector<std::uint8_t>{0});  // settle: in=0 ff=0 nxt=0 out=1
  const SeqStep step = sim.step(std::vector<std::uint8_t>{1});
  // in: 0->1, ff stays 0, nxt: 0->1, out stays 1  => 2 toggles of 4 lines.
  EXPECT_EQ(step.toggled_lines, 2u);
  EXPECT_DOUBLE_EQ(step.switching_percent, 50.0);
}

TEST(SeqSim, HoldKeepsStateVariable) {
  const Netlist nl = testing::make_toggle_circuit();
  SeqSim sim(nl);
  sim.load_reset_state();
  std::vector<std::uint8_t> one{1};
  std::vector<std::uint8_t> hold{1};
  sim.step(one, hold);
  EXPECT_EQ(sim.state()[0], 0);  // held at reset value despite nxt=1
  sim.step(one);
  EXPECT_EQ(sim.state()[0], 1);  // released
}

TEST(SeqSim, SnapshotRestoreRoundTrips) {
  const Netlist nl = make_s27();
  SeqSim sim(nl);
  sim.load_reset_state();
  std::vector<std::uint8_t> v(nl.num_inputs(), 1);
  sim.step(v);
  sim.step(v);
  const SeqSim::Snapshot snap = sim.snapshot();
  const auto state_before = sim.state();
  const auto cycle_before = sim.cycle();

  std::vector<std::uint8_t> w(nl.num_inputs(), 0);
  sim.step(w);
  sim.step(w);
  sim.restore(snap);
  EXPECT_EQ(sim.state(), state_before);
  EXPECT_EQ(sim.cycle(), cycle_before);

  // Re-stepping after restore reproduces the same trajectory.
  const SeqStep a = sim.step(w);
  sim.restore(snap);
  const SeqStep b = sim.step(w);
  EXPECT_EQ(a.toggled_lines, b.toggled_lines);
}

TEST(SeqSim, RejectsWrongSizes) {
  const Netlist nl = make_s27();
  SeqSim sim(nl);
  EXPECT_THROW(sim.step(std::vector<std::uint8_t>{1}), Error);
  EXPECT_THROW(sim.load_state(std::vector<std::uint8_t>{1}), Error);
}

}  // namespace
}  // namespace fbt
