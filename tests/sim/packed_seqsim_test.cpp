// PackedSeqSim vs 64 independent scalar SeqSims: lockstep equivalence of
// settled values, flip-flop state, and per-lane switching activity.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "circuits/registry.hpp"
#include "sim/packed_seqsim.hpp"
#include "sim/seqsim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

constexpr std::size_t kLanes = PackedSeqSim::kLanes;

/// Steps the packed sim and 64 scalar sims with independent random input
/// vectors for `cycles` cycles and compares everything per lane per cycle.
void run_lockstep(const Netlist& nl, std::size_t cycles, bool warm_start) {
  std::vector<SeqSim> scalars(kLanes, SeqSim(nl));
  PackedSeqSim packed(nl);
  Pcg32 rng(0xfeedULL, 0x5eedULL);

  if (warm_start) {
    // Drive one scalar sim a few cycles, then broadcast its mid-trajectory
    // state (including SWA history) into every lane.
    SeqSim warm(nl);
    warm.load_reset_state();
    std::vector<std::uint8_t> vec(nl.num_inputs());
    for (std::size_t c = 0; c < 5; ++c) {
      for (auto& v : vec) v = rng.chance(1, 2) ? 1 : 0;
      warm.step(vec);
    }
    const SeqSim::Snapshot snap = warm.snapshot();
    for (auto& s : scalars) s.restore(snap);
    packed.load_broadcast(warm.state(), warm.values(), warm.prev_values(),
                          warm.have_prev());
  } else {
    for (auto& s : scalars) s.load_reset_state();
    packed.load_broadcast(std::vector<std::uint8_t>(nl.num_flops(), 0), {},
                          {}, false);
  }

  std::vector<std::uint64_t> pi_words(nl.num_inputs());
  std::array<std::uint32_t, kLanes> toggles{};
  std::vector<std::uint8_t> vec(nl.num_inputs());

  for (std::size_t c = 0; c < cycles; ++c) {
    for (auto& w : pi_words) w = rng.next64();
    packed.step(pi_words, toggles);
    for (std::size_t k = 0; k < kLanes; ++k) {
      for (std::size_t i = 0; i < vec.size(); ++i) {
        vec[i] = (pi_words[i] >> k) & 1;
      }
      const SeqStep step = scalars[k].step(vec);
      ASSERT_EQ(step.toggled_lines, toggles[k])
          << "lane " << k << " cycle " << c;
      for (NodeId id = 0; id < nl.size(); ++id) {
        ASSERT_EQ(scalars[k].value(id), (packed.value(id) >> k) & 1)
            << "node " << id << " lane " << k << " cycle " << c;
      }
      const std::span<const std::uint64_t> state = packed.state_words();
      for (std::size_t f = 0; f < nl.num_flops(); ++f) {
        ASSERT_EQ(scalars[k].state()[f], (state[f] >> k) & 1)
            << "flop " << f << " lane " << k << " cycle " << c;
      }
    }
  }
}

TEST(PackedSeqSim, MatchesScalarLanesFromReset) {
  run_lockstep(load_benchmark("s298"), 20, /*warm_start=*/false);
}

TEST(PackedSeqSim, MatchesScalarLanesFromMidTrajectoryBroadcast) {
  run_lockstep(load_benchmark("s344"), 20, /*warm_start=*/true);
}

TEST(PackedSeqSim, RealNetlistMatchesScalarLanes) {
  // s27 is the one genuine (parsed, not synthetic) netlist in the registry.
  run_lockstep(load_benchmark("s27"), 30, /*warm_start=*/false);
}

TEST(PackedSeqSim, FirstStepAfterColdLoadMeasuresNoActivity) {
  const Netlist nl = load_benchmark("s298");
  PackedSeqSim packed(nl);
  packed.load_broadcast(std::vector<std::uint8_t>(nl.num_flops(), 0), {}, {},
                        false);
  std::vector<std::uint64_t> pi_words(nl.num_inputs(), ~0ULL);
  std::array<std::uint32_t, kLanes> toggles{};
  packed.step(pi_words, toggles);
  for (std::size_t k = 0; k < kLanes; ++k) EXPECT_EQ(toggles[k], 0u);
  // The second step measures against the first's settled values.
  std::fill(pi_words.begin(), pi_words.end(), 0ULL);
  packed.step(pi_words, toggles);
  std::uint32_t total = 0;
  for (std::size_t k = 0; k < kLanes; ++k) total += toggles[k];
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace fbt
