#include "sim/cubesim.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "test_circuits.hpp"

namespace fbt {
namespace {

TEST(CubeSim, AllXStaysX) {
  const Netlist nl = make_s27();
  CubeSim sim(nl);
  sim.clear();
  sim.eval();
  // With every source X, nothing can become binary in s27 (no constants).
  for (const NodeId id : nl.eval_order()) {
    EXPECT_EQ(sim.value(id), Val3::kX) << nl.gate(id).name;
  }
  EXPECT_EQ(sim.specified_next_state_count(), 0u);
}

TEST(CubeSim, ControllingValuePropagates) {
  const Netlist nl = testing::make_fig1_circuit();
  CubeSim sim(nl);
  sim.clear();
  // d = 0 forces e = AND(c, d) = 0 even with c unknown.
  sim.set_value(nl.find("d"), Val3::k0);
  sim.eval();
  EXPECT_EQ(sim.value(nl.find("e")), Val3::k0);
  EXPECT_EQ(sim.value(nl.find("c")), Val3::kX);
}

TEST(CubeSim, SynchronizationCountOnS27) {
  const Netlist nl = make_s27();
  CubeSim sim(nl);
  // G0 = 1 makes G14 = NOT(G0) = 0, G8 = AND(G14, G6) = 0,
  // G10 = NOR(G14, G11) stays X (depends on G11)... count what it settles.
  sim.clear();
  sim.set_value(nl.find("G0"), Val3::k1);
  sim.eval();
  EXPECT_EQ(sim.value(nl.find("G14")), Val3::k0);
  EXPECT_EQ(sim.value(nl.find("G8")), Val3::k0);
  const std::size_t sync_g0_1 = sim.specified_next_state_count();

  sim.clear();
  sim.set_value(nl.find("G0"), Val3::k0);
  sim.eval();
  // G14 = 1 forces G10 = NOR(G14, G11) = 0: synchronizes flop G5's input.
  EXPECT_EQ(sim.value(nl.find("G10")), Val3::k0);
  const std::size_t sync_g0_0 = sim.specified_next_state_count();
  EXPECT_GE(sync_g0_0, 1u);
  // The two values synchronize different numbers of state variables, which
  // is exactly the asymmetry the input cube C captures.
  EXPECT_NE(sync_g0_0, sync_g0_1);
}

}  // namespace
}  // namespace fbt
