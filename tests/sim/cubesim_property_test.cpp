// Property: circuit-level three-valued simulation is a sound abstraction of
// two-valued simulation -- every binary value CubeSim derives from a partial
// source cube holds in all completions.
#include <gtest/gtest.h>

#include "circuits/synth.hpp"
#include "sim/bitsim.hpp"
#include "sim/cubesim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

class CubeSimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CubeSimProperty, BinaryOutcomesHoldInAllCompletions) {
  SynthParams p;
  p.name = "cubeprop" + std::to_string(GetParam());
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flops = 3;
  p.num_gates = 40;
  p.seed = GetParam();
  const Netlist nl = generate_synthetic(p);
  Pcg32 rng(GetParam() + 1);

  std::vector<NodeId> sources;
  for (const NodeId pi : nl.inputs()) sources.push_back(pi);
  for (const NodeId ff : nl.flops()) sources.push_back(ff);
  ASSERT_LE(sources.size(), 16u);

  for (int trial = 0; trial < 25; ++trial) {
    // Partial cube over the sources.
    CubeSim cube(nl);
    cube.clear();
    std::uint32_t fixed_mask = 0;
    std::uint32_t fixed_bits = 0;
    for (std::size_t k = 0; k < sources.size(); ++k) {
      if (!rng.chance(1, 2)) continue;
      const bool value = rng.chance(1, 2);
      fixed_mask |= 1u << k;
      if (value) fixed_bits |= 1u << k;
      cube.set_value(sources[k], value ? Val3::k1 : Val3::k0);
    }
    cube.eval();

    // Pack all completions of the free sources into 64-bit lanes (chunks).
    const std::uint32_t total = 1u << sources.size();
    for (std::uint32_t base = 0; base < total; base += 64) {
      BitSim bits(nl);
      for (std::size_t k = 0; k < sources.size(); ++k) {
        std::uint64_t word = 0;
        for (std::uint32_t lane = 0; lane < 64 && base + lane < total;
             ++lane) {
          const std::uint32_t assignment = base + lane;
          const bool value = (fixed_mask >> k) & 1
                                 ? ((fixed_bits >> k) & 1) != 0
                                 : ((assignment >> k) & 1) != 0;
          if (value) word |= 1ULL << lane;
        }
        bits.set_value(sources[k], word);
      }
      bits.eval();
      const std::uint64_t valid =
          base + 64 <= total ? ~0ULL : ((1ULL << (total - base)) - 1);
      for (NodeId id = 0; id < nl.size(); ++id) {
        const Val3 v = cube.value(id);
        if (v == Val3::kX) continue;
        const std::uint64_t expected = v == Val3::k1 ? valid : 0;
        EXPECT_EQ(bits.value(id) & valid, expected)
            << "node " << nl.gate(id).name << " trial " << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeSimProperty,
                         ::testing::Values(10u, 20u, 30u, 40u));

}  // namespace
}  // namespace fbt
