// Property: .bench writer/parser round-trip is exact for arbitrary synthetic
// circuits (structure and simulated behaviour).
#include <gtest/gtest.h>

#include "circuits/synth.hpp"
#include "netlist/bench_io.hpp"
#include "sim/seqsim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

class BenchRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenchRoundTrip, StructureAndBehaviourSurvive) {
  SynthParams p;
  p.name = "rt" + std::to_string(GetParam());
  p.num_inputs = 5 + GetParam() % 7;
  p.num_outputs = 3 + GetParam() % 5;
  p.num_flops = GetParam() % 9;
  p.num_gates = 60 + (GetParam() % 5) * 30;
  p.seed = GetParam();
  if (p.num_gates < p.num_inputs + p.num_flops) {
    p.num_gates = p.num_inputs + p.num_flops + 10;
  }
  const Netlist original = generate_synthetic(p);
  const Netlist reparsed = parse_bench(write_bench(original), p.name);

  // Structural identity.
  ASSERT_EQ(reparsed.size(), original.size());
  EXPECT_EQ(reparsed.num_inputs(), original.num_inputs());
  EXPECT_EQ(reparsed.num_outputs(), original.num_outputs());
  EXPECT_EQ(reparsed.num_flops(), original.num_flops());
  // Writing again is a fixpoint.
  EXPECT_EQ(write_bench(reparsed), write_bench(original));

  // Behavioural identity on a random stimulus.
  SeqSim a(original);
  SeqSim b(reparsed);
  a.load_reset_state();
  b.load_reset_state();
  Pcg32 rng(GetParam() ^ 0x5bd1e995);
  for (int c = 0; c < 50; ++c) {
    std::vector<std::uint8_t> pi(original.num_inputs());
    for (auto& bit : pi) bit = rng.chance(1, 2);
    a.step(pi);
    b.step(pi);
    EXPECT_EQ(a.state(), b.state()) << "cycle " << c;
    for (const NodeId po : original.outputs()) {
      const NodeId other = reparsed.find(original.gate(po).name);
      ASSERT_NE(other, kNoNode);
      EXPECT_EQ(a.value(po), b.value(other));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenchRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace fbt
