#include "netlist/scan.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "circuits/synth.hpp"

namespace fbt {
namespace {

TEST(ScanChains, SingleShortChainForFewFlops) {
  const Netlist nl = make_s27();
  const ScanChains scan(nl, ScanConfig{.max_chains = 10,
                                       .min_chain_length = 100});
  EXPECT_EQ(scan.num_chains(), 1u);
  EXPECT_EQ(scan.longest_length(), 3u);
  EXPECT_EQ(scan.shift_cycles(), 3u);
}

TEST(ScanChains, PartitionsLargeFlopCountEvenly) {
  SynthParams p;
  p.name = "scan_big";
  p.num_inputs = 8;
  p.num_outputs = 8;
  p.num_flops = 1234;
  p.num_gates = 2000;
  p.seed = 99;
  const Netlist nl = generate_synthetic(p);
  const ScanChains scan(nl, ScanConfig{.max_chains = 10,
                                       .min_chain_length = 100});
  EXPECT_EQ(scan.num_chains(), 10u);
  std::size_t total = 0;
  for (std::size_t c = 0; c < scan.num_chains(); ++c) {
    total += scan.chain(c).size();
    // Approximately equal lengths: within one of the longest.
    EXPECT_GE(scan.chain(c).size() + 1, scan.longest_length());
  }
  EXPECT_EQ(total, 1234u);
  EXPECT_EQ(scan.longest_length(), 124u);  // ceil(1234 / 10)
}

TEST(ScanChains, RespectsMaxChains) {
  SynthParams p;
  p.name = "scan_mid";
  p.num_inputs = 4;
  p.num_outputs = 4;
  p.num_flops = 250;
  p.num_gates = 600;
  p.seed = 7;
  const Netlist nl = generate_synthetic(p);
  const ScanChains scan(nl, ScanConfig{.max_chains = 10,
                                       .min_chain_length = 100});
  // 250 flops / >=100 per chain -> 2 chains of 125.
  EXPECT_EQ(scan.num_chains(), 2u);
  EXPECT_EQ(scan.longest_length(), 125u);
}

TEST(ScanChains, EqualPartitionConfigDividesEveryChainIntoLsc) {
  // For a range of flop counts the derived config must yield chains whose
  // lengths all divide the longest (the RTL circular-shift restoration
  // precondition), with as many chains as a divisor <= 10 allows.
  for (const std::size_t nff :
       {1u, 2u, 3u, 7u, 21u, 74u, 229u, 1128u, 1200u}) {
    SynthParams p;
    p.name = "equal_part";
    p.num_inputs = 4;
    p.num_outputs = 2;
    p.num_flops = nff;
    p.num_gates = 4 * nff + 8;
    p.seed = 11;
    const Netlist nl = generate_synthetic(p);
    const ScanChains scan(nl, equal_partition_scan_config(nff));
    ASSERT_GE(scan.num_chains(), 1u) << nff;
    for (std::size_t c = 0; c < scan.num_chains(); ++c) {
      EXPECT_EQ(scan.longest_length() % scan.chain(c).size(), 0u) << nff;
      EXPECT_EQ(scan.chain(c).size(), scan.longest_length()) << nff;
    }
  }
}

TEST(ScanChains, NoFlopsYieldsNoChains) {
  const Netlist nl = make_buffers_block(5);
  const ScanChains scan(nl, ScanConfig{});
  EXPECT_EQ(scan.num_chains(), 0u);
  EXPECT_EQ(scan.longest_length(), 0u);
}

}  // namespace
}  // namespace fbt
