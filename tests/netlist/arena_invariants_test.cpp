// Pins the arena/SoA netlist refactor against the structural contract the
// per-gate-record implementation established: for every registry benchmark,
// the evaluation order is topological, levels derive from fanins, the fanout
// CSR is the exact transpose of the fanin CSR (duplicates preserved, rows in
// ascending consumer order), the absorbed eval CSR mirrors eval_order, the
// open-addressing name index resolves every interned name, and a .bench
// round-trip preserves node ids -- not just names. A million-gate smoke test
// pins the arena's bytes-per-gate so storage growth cannot creep back in.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "circuits/synth.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"

namespace fbt {
namespace {

TEST(ArenaInvariants, RegistryEvalOrderIsTopological) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    std::vector<char> seen(nl.size(), 0);
    // Sources (inputs, flops, consts) are available before evaluation.
    for (NodeId id = 0; id < nl.size(); ++id) {
      const GateType t = nl.type(id);
      if (!is_combinational(t)) seen[id] = 1;
    }
    for (const NodeId id : nl.eval_order()) {
      for (const NodeId f : nl.fanins(id)) {
        EXPECT_TRUE(seen[f]) << spec.name << ": node " << nl.node_name(id)
                             << " evaluated before fanin " << nl.node_name(f);
      }
      EXPECT_FALSE(seen[id])
          << spec.name << ": node " << nl.node_name(id) << " evaluated twice";
      seen[id] = 1;
    }
    for (NodeId id = 0; id < nl.size(); ++id) {
      EXPECT_TRUE(seen[id])
          << spec.name << ": node " << nl.node_name(id) << " never evaluated";
    }
  }
}

TEST(ArenaInvariants, RegistryLevelsFollowFanins) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    unsigned max_seen = 0;
    for (NodeId id = 0; id < nl.size(); ++id) {
      if (!is_combinational(nl.type(id))) {
        EXPECT_EQ(nl.level(id), 0u) << spec.name << " source " << id;
        continue;
      }
      unsigned expect = 0;
      for (const NodeId f : nl.fanins(id)) {
        expect = std::max(expect, nl.level(f) + 1);
      }
      EXPECT_EQ(nl.level(id), expect) << spec.name << " node " << id;
      max_seen = std::max(max_seen, expect);
    }
    EXPECT_EQ(nl.max_level(), max_seen) << spec.name;
  }
}

TEST(ArenaInvariants, RegistryFanoutsAreFaninTranspose) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    // Transpose reference built the way the per-node-vector implementation
    // did: consumers appended in ascending node id, fanin-position order,
    // duplicates kept (a node feeding both legs of an XOR appears twice).
    std::vector<std::vector<NodeId>> expect(nl.size());
    for (NodeId id = 0; id < nl.size(); ++id) {
      for (const NodeId f : nl.fanins(id)) expect[f].push_back(id);
    }
    for (NodeId id = 0; id < nl.size(); ++id) {
      const auto got = nl.fanouts(id);
      ASSERT_EQ(got.size(), expect[id].size()) << spec.name << " node " << id;
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k], expect[id][k])
            << spec.name << " node " << id << " fanout " << k;
      }
    }
  }
}

TEST(ArenaInvariants, RegistryEvalCsrMirrorsEvalOrder) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    const auto entries = nl.eval_entries();
    const auto& order = nl.eval_order();
    ASSERT_EQ(entries.size(), order.size()) << spec.name;
    const NodeId* flat = nl.eval_fanin_ids();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const EvalEntry& e = entries[i];
      EXPECT_EQ(e.node, order[i]) << spec.name;
      EXPECT_EQ(e.type, nl.type(e.node)) << spec.name;
      const auto fanins = nl.fanins(e.node);
      ASSERT_EQ(e.count, fanins.size()) << spec.name << " node " << e.node;
      for (std::size_t k = 0; k < fanins.size(); ++k) {
        EXPECT_EQ(flat[e.first + k], fanins[k])
            << spec.name << " node " << e.node << " fanin " << k;
      }
    }
  }
}

TEST(ArenaInvariants, RegistryNameIndexResolvesEveryNode) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    for (NodeId id = 0; id < nl.size(); ++id) {
      const std::string_view name = nl.node_name(id);
      EXPECT_EQ(nl.find(name), id) << spec.name;
      // Heterogeneous lookup: a view into caller-owned storage that is not
      // the arena resolves identically (no std::string temporary needed).
      char buf[128];
      ASSERT_LT(name.size(), sizeof(buf));
      std::memcpy(buf, name.data(), name.size());
      EXPECT_EQ(nl.find(std::string_view(buf, name.size())), id) << spec.name;
    }
    EXPECT_EQ(nl.find("definitely_not_a_net_name"), kNoNode) << spec.name;
  }
}

TEST(ArenaInvariants, RegistryRoundTripPreservesNodeIds) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    const Netlist rp = parse_bench(write_bench(nl), nl.name());
    // Id-for-id equality, not just name-set equality: cache keys, fault
    // lists, and detection matrices all index by NodeId.
    ASSERT_EQ(rp.size(), nl.size()) << spec.name;
    for (NodeId id = 0; id < nl.size(); ++id) {
      EXPECT_EQ(rp.node_name(id), nl.node_name(id)) << spec.name;
      EXPECT_EQ(rp.type(id), nl.type(id)) << spec.name;
    }
  }
}

TEST(ArenaSmoke, MillionGateBuildStaysWithinByteBudget) {
  SynthParams params;
  params.name = "arena_smoke_1m";
  params.num_inputs = 64;
  params.num_outputs = 32;
  params.num_flops = 100000;
  params.num_gates = 1000000;
  params.seed = 0x5ca1ab1eULL;
  const Netlist nl = generate_synthetic(params);
  ASSERT_TRUE(nl.finalized());
  EXPECT_EQ(nl.num_gates(), params.num_gates);
  // Pinned storage budget: the SoA arena (types, interned names, fanin CSR,
  // name index) runs ~37 bytes/gate and the full structure including the
  // fanout/eval CSRs, levels, and eval order ~85 bytes/gate at this size.
  // The old per-gate-record layout was ~161 bytes/gate; the bound sits far
  // from both so only a real layout regression trips it.
  const double arena_per_gate = static_cast<double>(nl.arena_bytes()) /
                                static_cast<double>(nl.num_gates());
  const double total_per_gate = static_cast<double>(nl.footprint_bytes()) /
                                static_cast<double>(nl.num_gates());
  EXPECT_LT(arena_per_gate, 60.0);
  EXPECT_LT(total_per_gate, 120.0);
}

}  // namespace
}  // namespace fbt
