#include "netlist/export.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "circuits/s27.hpp"

namespace fbt {
namespace {

TEST(Export, VerilogContainsEveryGateAndFlop) {
  const Netlist nl = make_s27();
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("module s27"), std::string::npos);
  EXPECT_NE(v.find("fbt_dff dff_G5"), std::string::npos);
  EXPECT_NE(v.find("nand g_G9"), std::string::npos);
  EXPECT_NE(v.find("nor g_G11"), std::string::npos);
  EXPECT_NE(v.find("not g_G17"), std::string::npos);
  EXPECT_NE(v.find("output G17_po"), std::string::npos);
  // The behavioural flop cell is appended once.
  EXPECT_NE(v.find("module fbt_dff"), std::string::npos);
}

TEST(Export, LegalizesHostileIdentifiers) {
  EXPECT_EQ(legalize_verilog_identifier("G1[3]"), "G1_3_");
  EXPECT_EQ(legalize_verilog_identifier("a.b"), "a_b");
  EXPECT_EQ(legalize_verilog_identifier("9out"), "n_9out");
  EXPECT_EQ(legalize_verilog_identifier("wire"), "id_wire");
  EXPECT_EQ(legalize_verilog_identifier("clk"), "id_clk");
  // Idempotent on already-legal, non-reserved names.
  EXPECT_EQ(legalize_verilog_identifier("G1_3_"), "G1_3_");
  EXPECT_EQ(legalize_verilog_identifier("n_9out"), "n_9out");
}

TEST(Export, DedupesCollidingMangledNames) {
  Netlist nl("2bad name");
  const NodeId a = nl.add_input("G1[3]");
  const NodeId b = nl.add_input("G1_3_");  // collides once legalized
  const NodeId ff = nl.add_dff("wire");
  const NodeId y = nl.add_gate(GateType::kAnd, "a.b", {a, b});
  nl.set_dff_input(ff, y);
  nl.mark_output(y);
  nl.finalize();

  const VerilogNames names = verilog_names(nl);
  EXPECT_EQ(names.module_name, legalize_verilog_identifier("2bad name"));
  // All net names and the output port are pairwise distinct.
  std::set<std::string> seen(names.net.begin(), names.net.end());
  EXPECT_EQ(seen.size(), names.net.size());
  for (const std::string& port : names.out_port) {
    EXPECT_TRUE(seen.insert(port).second) << port;
  }
  // The emitted text declares both deduped names as ports.
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("input " + names.net[a] + ";"), std::string::npos);
  EXPECT_NE(v.find("input " + names.net[b] + ";"), std::string::npos);
  EXPECT_NE(names.net[a], names.net[b]);
}

TEST(Export, OutputPortOfANetNamedLikeAnotherPortIsDeduped) {
  // A net literally named "y_po" next to an output net "y" would collide with
  // y's port name; the writer must keep them apart.
  Netlist nl("ports");
  const NodeId a = nl.add_input("a");
  const NodeId y = nl.add_gate(GateType::kBuf, "y", {a});
  const NodeId y_po = nl.add_gate(GateType::kNot, "y_po", {a});
  nl.mark_output(y);
  nl.mark_output(y_po);
  nl.finalize();

  const VerilogNames names = verilog_names(nl);
  std::set<std::string> all(names.net.begin(), names.net.end());
  for (const std::string& port : names.out_port) {
    EXPECT_TRUE(all.insert(port).second) << port;
  }
  (void)y;
  (void)y_po;
}

TEST(Export, DotHasOneNodePerGateAndEdgesPerFanin) {
  const Netlist nl = make_s27();
  const std::string d = write_dot(nl);
  std::size_t nodes = 0;
  std::size_t edges = 0;
  for (std::size_t pos = 0; (pos = d.find("shape=", pos)) != std::string::npos;
       ++pos) {
    ++nodes;
  }
  for (std::size_t pos = 0; (pos = d.find(" -> ", pos)) != std::string::npos;
       ++pos) {
    ++edges;
  }
  EXPECT_EQ(nodes, nl.size());
  std::size_t expected_edges = 0;
  for (NodeId id = 0; id < nl.size(); ++id) {
    expected_edges += nl.gate(id).fanins.size();
  }
  EXPECT_EQ(edges, expected_edges);
  // The primary output is double-circled.
  EXPECT_NE(d.find("peripheries=2"), std::string::npos);
}

}  // namespace
}  // namespace fbt
