#include "netlist/export.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"

namespace fbt {
namespace {

TEST(Export, VerilogContainsEveryGateAndFlop) {
  const Netlist nl = make_s27();
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("module s27"), std::string::npos);
  EXPECT_NE(v.find("fbt_dff dff_G5"), std::string::npos);
  EXPECT_NE(v.find("nand g_G9"), std::string::npos);
  EXPECT_NE(v.find("nor g_G11"), std::string::npos);
  EXPECT_NE(v.find("not g_G17"), std::string::npos);
  EXPECT_NE(v.find("output G17_po"), std::string::npos);
  // The behavioural flop cell is appended once.
  EXPECT_NE(v.find("module fbt_dff"), std::string::npos);
}

TEST(Export, DotHasOneNodePerGateAndEdgesPerFanin) {
  const Netlist nl = make_s27();
  const std::string d = write_dot(nl);
  std::size_t nodes = 0;
  std::size_t edges = 0;
  for (std::size_t pos = 0; (pos = d.find("shape=", pos)) != std::string::npos;
       ++pos) {
    ++nodes;
  }
  for (std::size_t pos = 0; (pos = d.find(" -> ", pos)) != std::string::npos;
       ++pos) {
    ++edges;
  }
  EXPECT_EQ(nodes, nl.size());
  std::size_t expected_edges = 0;
  for (NodeId id = 0; id < nl.size(); ++id) {
    expected_edges += nl.gate(id).fanins.size();
  }
  EXPECT_EQ(edges, expected_edges);
  // The primary output is double-circled.
  EXPECT_NE(d.find("peripheries=2"), std::string::npos);
}

}  // namespace
}  // namespace fbt
