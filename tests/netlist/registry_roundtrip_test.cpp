// Satellite: every registry benchmark must survive netlist -> write_bench ->
// parse_bench with full structural equality (node types, fanin lists by name,
// and the PI/PO/flop name sets), not just matching counts.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "netlist/bench_io.hpp"

namespace fbt {
namespace {

struct NodeShape {
  GateType type = GateType::kBuf;
  std::vector<std::string> fanins;  // in fanin order
  bool operator==(const NodeShape&) const = default;
};

std::map<std::string, NodeShape> shape_by_name(const Netlist& nl) {
  std::map<std::string, NodeShape> shapes;
  for (NodeId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    NodeShape s;
    s.type = g.type;
    for (const NodeId f : g.fanins) {
      s.fanins.emplace_back(nl.node_name(f));
    }
    const bool inserted = shapes.emplace(g.name, std::move(s)).second;
    EXPECT_TRUE(inserted) << nl.name() << ": duplicate node name " << g.name;
  }
  return shapes;
}

std::set<std::string> names_of(const Netlist& nl,
                               const std::vector<NodeId>& ids) {
  std::set<std::string> names;
  for (const NodeId id : ids) names.emplace(nl.node_name(id));
  return names;
}

TEST(RegistryRoundtrip, EveryBenchmarkIsStructurallyStable) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist original = load_benchmark(spec.name);
    const Netlist reparsed =
        parse_bench(write_bench(original), original.name());

    ASSERT_EQ(reparsed.size(), original.size()) << spec.name;
    EXPECT_EQ(reparsed.num_inputs(), original.num_inputs()) << spec.name;
    EXPECT_EQ(reparsed.num_outputs(), original.num_outputs()) << spec.name;
    EXPECT_EQ(reparsed.num_flops(), original.num_flops()) << spec.name;
    EXPECT_EQ(reparsed.num_gates(), original.num_gates()) << spec.name;

    const auto a = shape_by_name(original);
    const auto b = shape_by_name(reparsed);
    ASSERT_EQ(a.size(), b.size()) << spec.name;
    for (const auto& [name, shape] : a) {
      const auto it = b.find(name);
      ASSERT_NE(it, b.end()) << spec.name << ": node " << name << " lost";
      EXPECT_EQ(it->second.type, shape.type) << spec.name << " node " << name;
      EXPECT_EQ(it->second.fanins, shape.fanins)
          << spec.name << " node " << name;
    }

    EXPECT_EQ(names_of(reparsed, reparsed.inputs()),
              names_of(original, original.inputs()))
        << spec.name;
    EXPECT_EQ(names_of(reparsed, reparsed.outputs()),
              names_of(original, original.outputs()))
        << spec.name;
    EXPECT_EQ(names_of(reparsed, reparsed.flops()),
              names_of(original, original.flops()))
        << spec.name;
  }
}

}  // namespace
}  // namespace fbt
