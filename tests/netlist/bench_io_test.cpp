#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

TEST(BenchIo, ParsesS27) {
  const Netlist nl = make_s27();
  EXPECT_EQ(nl.name(), "s27");
  EXPECT_EQ(nl.num_inputs(), 4u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_flops(), 3u);
  EXPECT_EQ(nl.num_gates(), 10u);  // 2 NOT + 1 AND + 2 OR + 1 NAND + 4 NOR
  // Spot-check structure: G11 = NOR(G5, G9) and feeds G17 = NOT(G11).
  const NodeId g11 = nl.find("G11");
  const NodeId g17 = nl.find("G17");
  ASSERT_NE(g11, kNoNode);
  ASSERT_NE(g17, kNoNode);
  EXPECT_EQ(nl.type(g11), GateType::kNor);
  EXPECT_EQ(nl.type(g17), GateType::kNot);
  EXPECT_EQ(nl.gate(g17).fanins[0], g11);
  EXPECT_TRUE(nl.is_output(g17));
}

TEST(BenchIo, RoundTripsThroughWriter) {
  const Netlist original = make_s27();
  const std::string text = write_bench(original);
  const Netlist reparsed = parse_bench(text, "s27");
  EXPECT_EQ(reparsed.num_inputs(), original.num_inputs());
  EXPECT_EQ(reparsed.num_outputs(), original.num_outputs());
  EXPECT_EQ(reparsed.num_flops(), original.num_flops());
  EXPECT_EQ(reparsed.num_gates(), original.num_gates());
  for (NodeId id = 0; id < original.size(); ++id) {
    const NodeId other = reparsed.find(original.gate(id).name);
    ASSERT_NE(other, kNoNode) << original.gate(id).name;
    EXPECT_EQ(reparsed.type(other), original.type(id));
    EXPECT_EQ(reparsed.gate(other).fanins.size(),
              original.gate(id).fanins.size());
  }
}

TEST(BenchIo, HandlesForwardReferencesAndComments) {
  const Netlist nl = parse_bench(R"(
# forward reference: y uses z before z is defined
INPUT(a)
OUTPUT(y)
y = NOT(z)   # trailing comment
z = BUF(a)
)",
                                 "fwd");
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.type(nl.find("y")), GateType::kNot);
}

TEST(BenchIo, RejectsUndefinedNet) {
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(x)\n", "bad"), Error);
  EXPECT_THROW(parse_bench("y = AND(a, b)\nOUTPUT(y)\n", "bad2"), Error);
}

TEST(BenchIo, RejectsMalformedLines) {
  EXPECT_THROW(parse_bench("INPUT a\n", "m1"), Error);
  EXPECT_THROW(parse_bench("x = AND(a\n", "m2"), Error);
  EXPECT_THROW(parse_bench("FOO(a)\n", "m3"), Error);
}

TEST(BenchIo, RejectsDuplicateDefinition) {
  EXPECT_THROW(parse_bench("INPUT(a)\nINPUT(a)\n", "d1"), Error);
  EXPECT_THROW(
      parse_bench("INPUT(a)\nx = BUF(a)\nx = NOT(a)\nOUTPUT(x)\n", "d2"),
      Error);
}

TEST(BenchIo, AcceptsDffAndBuffAliases) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(o)
q = DFF(o)
o = BUFF(q2)
q2 = INV(a)
)",
                                 "alias");
  EXPECT_EQ(nl.type(nl.find("o")), GateType::kBuf);
  EXPECT_EQ(nl.type(nl.find("q2")), GateType::kNot);
  EXPECT_EQ(nl.num_flops(), 1u);
}

}  // namespace
}  // namespace fbt
