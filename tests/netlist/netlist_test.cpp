#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "netlist/gate_type.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

TEST(GateType, NamesRoundTrip) {
  for (const GateType t :
       {GateType::kInput, GateType::kDff, GateType::kBuf, GateType::kNot,
        GateType::kAnd, GateType::kNand, GateType::kOr, GateType::kNor,
        GateType::kXor, GateType::kXnor, GateType::kConst0,
        GateType::kConst1}) {
    EXPECT_EQ(gate_type_from_name(gate_type_name(t)), t);
  }
  EXPECT_THROW(gate_type_from_name("FROB"), Error);
}

TEST(GateType, ControllingValues) {
  EXPECT_FALSE(controlling_value(GateType::kAnd));
  EXPECT_FALSE(controlling_value(GateType::kNand));
  EXPECT_TRUE(controlling_value(GateType::kOr));
  EXPECT_TRUE(controlling_value(GateType::kNor));
  EXPECT_FALSE(has_controlling_value(GateType::kXor));
  EXPECT_THROW(controlling_value(GateType::kXor), Error);
}

TEST(GateType, InversionPolarity) {
  EXPECT_TRUE(inverts(GateType::kNot));
  EXPECT_TRUE(inverts(GateType::kNand));
  EXPECT_TRUE(inverts(GateType::kNor));
  EXPECT_TRUE(inverts(GateType::kXnor));
  EXPECT_FALSE(inverts(GateType::kBuf));
  EXPECT_FALSE(inverts(GateType::kAnd));
  EXPECT_FALSE(inverts(GateType::kOr));
  EXPECT_FALSE(inverts(GateType::kXor));
}

TEST(Netlist, BuildsAndLevelizes) {
  Netlist nl("tiny");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(GateType::kNand, "g1", {a, b});
  const NodeId g2 = nl.add_gate(GateType::kNot, "g2", {g1});
  nl.mark_output(g2);
  nl.finalize();

  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.level(a), 0u);
  EXPECT_EQ(nl.level(g1), 1u);
  EXPECT_EQ(nl.level(g2), 2u);
  EXPECT_EQ(nl.max_level(), 2u);
  ASSERT_EQ(nl.eval_order().size(), 2u);
  EXPECT_EQ(nl.eval_order()[0], g1);
  EXPECT_EQ(nl.eval_order()[1], g2);
  EXPECT_EQ(nl.fanouts(a).size(), 1u);
  EXPECT_TRUE(nl.is_output(g2));
  EXPECT_FALSE(nl.is_output(g1));
  EXPECT_EQ(nl.find("g1"), g1);
  EXPECT_EQ(nl.find("nope"), kNoNode);
}

TEST(Netlist, FlipFlopLinkage) {
  Netlist nl("seq");
  const NodeId in = nl.add_input("in");
  const NodeId ff = nl.add_dff("ff");
  const NodeId nxt = nl.add_gate(GateType::kXor, "nxt", {in, ff});
  nl.set_dff_input(ff, nxt);
  nl.mark_output(nxt);
  nl.finalize();
  EXPECT_EQ(nl.dff_input(ff), nxt);
  EXPECT_EQ(nl.num_flops(), 1u);
  // The flop is a source: the sequential loop through it is not a
  // combinational cycle.
  EXPECT_EQ(nl.num_gates(), 1u);
}

TEST(Netlist, RejectsCombinationalCycle) {
  Netlist nl("cyc");
  const NodeId a = nl.add_input("a");
  // Create g1 with a placeholder fanin, then g2 = g1, and wire g1's fanin to
  // g2 is impossible through the public API (fanins are fixed at creation),
  // so build the cycle through mutual references via a DFF-free loop:
  // g1 = AND(a, g2) requires g2 to exist first -- the API prevents forward
  // references entirely, so a cycle cannot be expressed. Verify instead that
  // finalize() demands connected flop inputs.
  const NodeId ff = nl.add_dff("ff");
  (void)a;
  (void)ff;
  EXPECT_THROW(nl.finalize(), Error);
}

TEST(Netlist, RejectsDuplicateNames) {
  Netlist nl("dup");
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), Error);
}

TEST(Netlist, RejectsBadArity) {
  Netlist nl("arity");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  EXPECT_THROW(nl.add_gate(GateType::kNot, "n", {a, b}), Error);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, "g", {}), Error);
  EXPECT_THROW(nl.add_gate(GateType::kConst0, "c", {a}), Error);
}

TEST(Netlist, ImmutableAfterFinalize) {
  Netlist nl("frozen");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::kBuf, "g", {a});
  nl.mark_output(g);
  nl.finalize();
  EXPECT_THROW(nl.add_input("x"), Error);
  EXPECT_THROW(nl.mark_output(a), Error);
}

TEST(Netlist, RejectsDoubleOutputMark) {
  Netlist nl("po");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::kBuf, "g", {a});
  nl.mark_output(g);
  EXPECT_THROW(nl.mark_output(g), Error);
}

}  // namespace
}  // namespace fbt
