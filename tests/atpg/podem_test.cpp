#include "atpg/podem.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "circuits/synth.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/bench_io.hpp"
#include "test_circuits.hpp"

namespace fbt {
namespace {

PodemConfig fast_config() {
  return PodemConfig{.backtrack_limit = 5000,
                     .time_limit_seconds = 5.0,
                     .rng_seed = 1};
}

TEST(Podem, GeneratesVerifiedTestsForFig1) {
  const Netlist nl = testing::make_fig1_circuit();
  PodemEngine engine(nl, fast_config());
  BroadsideFaultSim fsim(nl);
  for (const NodeId line : {nl.find("a"), nl.find("c"), nl.find("e")}) {
    for (const bool rising : {true, false}) {
      const TransitionFault tf{line, rising};
      const PodemOutcome out = engine.generate(tf);
      ASSERT_EQ(out.status, PodemStatus::kDetected) << fault_name(nl, tf);
      const BroadsideTest test = engine.extract_test();
      EXPECT_TRUE(fsim.detects(test, tf)) << fault_name(nl, tf);
    }
  }
}

// Property sweep: every fault PODEM claims detected is confirmed by the
// independent fault simulator, on s27 (sequential, with broadside linkage).
TEST(Podem, S27TestsAreVerifiedByFaultSimulation) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::uncollapsed(nl);
  PodemEngine engine(nl, fast_config());
  BroadsideFaultSim fsim(nl);
  std::size_t detected = 0;
  std::size_t undetectable = 0;
  for (const TransitionFault& tf : faults.faults()) {
    const PodemOutcome out = engine.generate(tf);
    if (out.status == PodemStatus::kDetected) {
      ++detected;
      EXPECT_TRUE(fsim.detects(engine.extract_test(), tf))
          << fault_name(nl, tf);
    } else if (out.status == PodemStatus::kUndetectable) {
      ++undetectable;
    }
  }
  // s27 is small; everything should resolve without aborting, and most
  // transition faults are detectable by broadside tests.
  EXPECT_EQ(detected + undetectable, faults.size());
  EXPECT_GT(detected, faults.size() / 2);
}

// Undetectable proof cross-check: exhaustive enumeration over all broadside
// tests of a tiny circuit agrees with PODEM's undetectable verdicts.
TEST(Podem, UndetectableVerdictsMatchExhaustiveSearch) {
  const Netlist nl = testing::make_fig21_circuit();  // 2 PIs, 1 flop
  const TransitionFaultList faults = TransitionFaultList::uncollapsed(nl);
  PodemEngine engine(nl, fast_config());
  BroadsideFaultSim fsim(nl);
  for (const TransitionFault& tf : faults.faults()) {
    const PodemOutcome out = engine.generate(tf);
    ASSERT_NE(out.status, PodemStatus::kAborted) << fault_name(nl, tf);

    bool exhaustive_detectable = false;
    for (std::uint32_t bits = 0; bits < (1u << 5); ++bits) {
      BroadsideTest t;
      t.scan_state = {static_cast<std::uint8_t>(bits & 1)};
      t.v1 = {static_cast<std::uint8_t>((bits >> 1) & 1),
              static_cast<std::uint8_t>((bits >> 2) & 1)};
      t.v2 = {static_cast<std::uint8_t>((bits >> 3) & 1),
              static_cast<std::uint8_t>((bits >> 4) & 1)};
      if (fsim.detects(t, tf)) {
        exhaustive_detectable = true;
        break;
      }
    }
    EXPECT_EQ(out.status == PodemStatus::kDetected, exhaustive_detectable)
        << fault_name(nl, tf);
  }
}

TEST(Podem, MultiGoalSolveDetectsAllGoals) {
  const Netlist nl = testing::make_fig2_circuit();
  PodemEngine engine(nl, fast_config());
  BroadsideFaultSim fsim(nl);
  const std::vector<TransitionFault> goals = {{nl.find("a"), true},
                                              {nl.find("c"), true},
                                              {nl.find("e"), true},
                                              {nl.find("g"), true}};
  engine.reset();
  const PodemOutcome out = engine.solve(goals, true);
  ASSERT_EQ(out.status, PodemStatus::kDetected);
  const BroadsideTest test = engine.extract_test();
  for (const TransitionFault& tf : goals) {
    EXPECT_TRUE(fsim.detects(test, tf)) << fault_name(nl, tf);
  }
}

TEST(Podem, MultiGoalProvesJointUndetectability) {
  // Fig. 2.1: the TPDF along c-d-e requires c@2 = 1 and (via linkage from
  // e@1 = 0) c@2 = 0 -- individually detectable faults, jointly impossible.
  const Netlist nl = testing::make_fig21_circuit();
  PodemEngine engine(nl, fast_config());
  const std::vector<TransitionFault> goals = {{nl.find("c"), true},
                                              {nl.find("d"), false},
                                              {nl.find("e"), true}};
  engine.reset();
  const PodemOutcome out = engine.solve(goals, true);
  EXPECT_EQ(out.status, PodemStatus::kUndetectable);
}

TEST(Podem, PreassignmentsRestrictTheSearch) {
  const Netlist nl = testing::make_fig1_circuit();
  PodemEngine engine(nl, fast_config());
  engine.reset();
  // Force d = 0 in frame 2: e = AND(c, d) can never show the fault effect.
  const Assignment block{{Frame::k2, nl.find("d")}, false};
  ASSERT_TRUE(engine.preassign(std::span(&block, 1)));
  const PodemOutcome out =
      engine.target({nl.find("c"), true}, /*backtrack_into_earlier=*/true);
  EXPECT_EQ(out.status, PodemStatus::kUndetectable);
}

TEST(Podem, HeuristicModeDoesNotDisturbEarlierGoals) {
  const Netlist nl = testing::make_fig2_circuit();
  PodemEngine engine(nl, fast_config());
  BroadsideFaultSim fsim(nl);
  engine.reset();
  const TransitionFault first{nl.find("g"), true};
  ASSERT_EQ(engine.target(first, true).status, PodemStatus::kDetected);
  const std::size_t depth = engine.decision_depth();
  const TransitionFault second{nl.find("c"), true};
  const PodemOutcome out = engine.target(second, false);
  if (out.status == PodemStatus::kDetected) {
    const BroadsideTest test = engine.extract_test();
    EXPECT_TRUE(fsim.detects(test, first));
    EXPECT_TRUE(fsim.detects(test, second));
  } else {
    // On failure the engine must unwind its own decisions only.
    EXPECT_EQ(engine.decision_depth(), depth);
  }
}

TEST(Podem, RandomCircuitSweepIsSound) {
  SynthParams p;
  p.name = "podem_sweep";
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flops = 5;
  p.num_gates = 70;
  p.seed = 13;
  const Netlist nl = generate_synthetic(p);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  PodemEngine engine(nl, fast_config());
  BroadsideFaultSim fsim(nl);
  for (std::size_t i = 0; i < faults.size(); i += 2) {
    const TransitionFault& tf = faults.fault(i);
    const PodemOutcome out = engine.generate(tf);
    if (out.status == PodemStatus::kDetected) {
      EXPECT_TRUE(fsim.detects(engine.extract_test(), tf))
          << fault_name(nl, tf);
    }
  }
}

}  // namespace
}  // namespace fbt
