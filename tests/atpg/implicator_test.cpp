#include "atpg/implicator.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "netlist/bench_io.hpp"
#include "test_circuits.hpp"

namespace fbt {
namespace {

TEST(Implicator, ForwardImplication) {
  const Netlist nl = testing::make_fig1_circuit();
  Implicator imp(nl);
  EXPECT_TRUE(imp.assign({Frame::k2, nl.find("a")}, Val3::k1));
  // c = OR(a, b): a = 1 forces c = 1.
  EXPECT_EQ(imp.value({Frame::k2, nl.find("c")}), Val3::k1);
  // e = AND(c, d) stays X (d unknown).
  EXPECT_EQ(imp.value({Frame::k2, nl.find("e")}), Val3::kX);
}

TEST(Implicator, BackwardAllNonControlling) {
  const Netlist nl = testing::make_fig1_circuit();
  Implicator imp(nl);
  // e = AND(c, d) = 1 forces c = 1 and d = 1; c = OR(a, b) = 1 forces
  // nothing further (either input could be the 1).
  EXPECT_TRUE(imp.assign({Frame::k2, nl.find("e")}, Val3::k1));
  EXPECT_EQ(imp.value({Frame::k2, nl.find("c")}), Val3::k1);
  EXPECT_EQ(imp.value({Frame::k2, nl.find("d")}), Val3::k1);
  EXPECT_EQ(imp.value({Frame::k2, nl.find("a")}), Val3::kX);
}

TEST(Implicator, BackwardUniqueControllingInput) {
  const Netlist nl = testing::make_fig1_circuit();
  Implicator imp(nl);
  // c = OR(a, b) = 1 with b = 0 forces a = 1.
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("b")}, Val3::k0));
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("c")}, Val3::k1));
  EXPECT_EQ(imp.value({Frame::k1, nl.find("a")}), Val3::k1);
}

TEST(Implicator, XorBackward) {
  const Netlist nl = testing::make_toggle_circuit();
  Implicator imp(nl);
  // nxt = XOR(in, ff); nxt = 1 with in = 1 forces ff = 0 (frame 1).
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("in")}, Val3::k1));
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("nxt")}, Val3::k1));
  EXPECT_EQ(imp.value({Frame::k1, nl.find("ff")}), Val3::k0);
}

TEST(Implicator, BroadsideLinkage) {
  const Netlist nl = testing::make_toggle_circuit();
  Implicator imp(nl);
  // Frame-1 D value implies the frame-2 state variable and vice versa.
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("nxt")}, Val3::k1));
  EXPECT_EQ(imp.value({Frame::k2, nl.find("ff")}), Val3::k1);
  // And forward into frame-2 logic: out = NOT(ff) = 0.
  EXPECT_EQ(imp.value({Frame::k2, nl.find("out")}), Val3::k0);
}

TEST(Implicator, LinkageBackwardFromFrame2State) {
  const Netlist nl = testing::make_toggle_circuit();
  Implicator imp(nl);
  EXPECT_TRUE(imp.assign({Frame::k2, nl.find("ff")}, Val3::k0));
  EXPECT_EQ(imp.value({Frame::k1, nl.find("nxt")}), Val3::k0);
}

TEST(Implicator, DetectsConflict) {
  const Netlist nl = testing::make_fig1_circuit();
  Implicator imp(nl);
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("a")}, Val3::k1));
  // c = OR(1, b) = 1; asserting c = 0 conflicts.
  EXPECT_FALSE(imp.assign({Frame::k1, nl.find("c")}, Val3::k0));
}

TEST(Implicator, CheckpointRollback) {
  const Netlist nl = testing::make_fig1_circuit();
  Implicator imp(nl);
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("b")}, Val3::k0));
  const auto mark = imp.checkpoint();
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("a")}, Val3::k1));
  EXPECT_EQ(imp.value({Frame::k1, nl.find("c")}), Val3::k1);
  imp.rollback(mark);
  EXPECT_EQ(imp.value({Frame::k1, nl.find("a")}), Val3::kX);
  EXPECT_EQ(imp.value({Frame::k1, nl.find("c")}), Val3::kX);
  EXPECT_EQ(imp.value({Frame::k1, nl.find("b")}), Val3::k0);  // kept
}

TEST(Implicator, SpecifiedInputsFiltersFreeInputs) {
  const Netlist nl = testing::make_toggle_circuit();
  Implicator imp(nl);
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("nxt")}, Val3::k1));
  // nxt is not a free input; ff (frame 2) is not free either. Only free
  // inputs (in@1, in@2, ff@1) may appear.
  for (const Assignment& a : imp.specified_inputs()) {
    EXPECT_TRUE(is_free_input(nl, a.where));
  }
}

TEST(Implicator, Fig21ConflictIsFound) {
  // The dissertation's Fig. 2.1 example: e = 0 under p1 implies c = 0 under
  // p2 (broadside linkage), conflicting with c = 1 under p2.
  const Netlist nl = testing::make_fig21_circuit();
  Implicator imp(nl);
  EXPECT_TRUE(imp.assign({Frame::k1, nl.find("e")}, Val3::k0));
  EXPECT_EQ(imp.value({Frame::k2, nl.find("c")}), Val3::k0);
  EXPECT_FALSE(imp.assign({Frame::k2, nl.find("c")}, Val3::k1));
}

}  // namespace
}  // namespace fbt
