// The TPDF engine processes fault batches incrementally (bench_table2_2_4_6
// feeds it longest paths in tranches): transition-fault ATPG results and
// tests must carry over, and verdicts must match a single-shot run.
#include <gtest/gtest.h>

#include "atpg/tpdf_engine.hpp"
#include "circuits/s27.hpp"
#include "paths/path.hpp"

namespace fbt {
namespace {

std::vector<PathDelayFault> s27_faults() {
  const Netlist nl = make_s27();
  const PathEnumeration e = enumerate_all_paths(nl, 1000);
  std::vector<PathDelayFault> faults;
  for (const Path& p : e.paths) {
    faults.push_back({p, true});
    faults.push_back({p, false});
  }
  return faults;
}

TEST(TpdfIncremental, BatchedRunMatchesSingleShot) {
  const Netlist nl = make_s27();
  const auto faults = s27_faults();
  ASSERT_EQ(faults.size(), 56u);

  TpdfEngineConfig cfg;
  cfg.rng_seed = 99;
  TpdfEngine single(nl, cfg);
  const TpdfRunReport whole = single.run(faults);

  TpdfEngine batched(nl, cfg);
  std::size_t detected = 0;
  std::size_t undetectable = 0;
  std::size_t aborted = 0;
  double tf_seconds_after_first = 0.0;
  for (std::size_t start = 0; start < faults.size(); start += 14) {
    const std::size_t end = std::min(faults.size(), start + 14);
    const std::vector<PathDelayFault> batch(faults.begin() + start,
                                            faults.begin() + end);
    const TpdfRunReport r = batched.run(batch);
    detected += r.detected;
    undetectable += r.undetectable;
    aborted += r.aborted;
    if (start > 0) tf_seconds_after_first += r.seconds_tf_atpg;
  }
  // s27 resolves fully either way; the verdict totals must agree.
  EXPECT_EQ(detected, whole.detected);
  EXPECT_EQ(undetectable, whole.undetectable);
  EXPECT_EQ(aborted, whole.aborted);
  EXPECT_EQ(aborted, 0u);
  // Later batches reuse the transition-fault cache: near-zero phase-1 time
  // (all of s27's lines appear in the early batches' paths).
  EXPECT_LT(tf_seconds_after_first, 0.05);
}

TEST(TpdfIncremental, TestsAccumulateAcrossBatches) {
  const Netlist nl = make_s27();
  const auto faults = s27_faults();
  TpdfEngineConfig cfg;
  TpdfEngine engine(nl, cfg);
  const TpdfRunReport first =
      engine.run({faults.begin(), faults.begin() + 10});
  const TpdfRunReport second =
      engine.run({faults.begin() + 10, faults.begin() + 30});
  // The second report's test set contains at least the transition-fault
  // tests generated for the first batch (they remain a detection source).
  EXPECT_GE(second.tests.size(), first.tests.size() - first.detected);
}

}  // namespace
}  // namespace fbt
