#include "atpg/necessary.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"
#include "paths/path.hpp"
#include "test_circuits.hpp"

namespace fbt {
namespace {

TEST(Necessary, Fig21PathIsProvenUndetectable) {
  const Netlist nl = testing::make_fig21_circuit();
  PathDelayFault fp;
  fp.path.nodes = {nl.find("c"), nl.find("d"), nl.find("e")};
  fp.rising = true;
  const NecessaryAnalysis na = necessary_for_path(nl, fp);
  EXPECT_TRUE(na.undetectable);
}

TEST(Necessary, DetectablePathYieldsAssignments) {
  const Netlist nl = testing::make_fig2_circuit();
  PathDelayFault fp;
  fp.path.nodes = {nl.find("a"), nl.find("c"), nl.find("e"), nl.find("g")};
  fp.rising = true;
  const NecessaryAnalysis na = necessary_for_path(nl, fp);
  ASSERT_FALSE(na.undetectable);
  // a must be 0 under p1 and 1 under p2.
  bool a1_low = false;
  bool a2_high = false;
  for (const Assignment& a : na.input_assignments) {
    if (a.where.node == nl.find("a") && a.where.frame == Frame::k1) {
      a1_low = !a.value;
    }
    if (a.where.node == nl.find("a") && a.where.frame == Frame::k2) {
      a2_high = a.value;
    }
  }
  EXPECT_TRUE(a1_low);
  EXPECT_TRUE(a2_high);
}

TEST(Necessary, PropagationConditionsAddOffPathValues) {
  const Netlist nl = testing::make_fig2_circuit();
  PathDelayFault fp;
  fp.path.nodes = {nl.find("a"), nl.find("c"), nl.find("e"), nl.find("g")};
  fp.rising = true;
  const NecessaryAnalysis ina = input_necessary_assignments(nl, fp);
  ASSERT_FALSE(ina.undetectable);
  // Step 3 forces off-path inputs non-controlling under p2:
  // b (side of OR c) = 0, d (side of AND e) = 1, f (side of OR g) = 0.
  auto has = [&](const char* name, Frame fr, bool value) {
    for (const Assignment& a : ina.input_assignments) {
      if (a.where.node == nl.find(name) && a.where.frame == fr &&
          a.value == value) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has("b", Frame::k2, false));
  EXPECT_TRUE(has("d", Frame::k2, true));
  EXPECT_TRUE(has("f", Frame::k2, false));
}

// Soundness property: every input necessary assignment must hold in any test
// that detects the whole path (checked against tests found by brute force).
TEST(Necessary, AssignmentsAreNecessaryOnFig2) {
  const Netlist nl = testing::make_fig2_circuit();
  BroadsideFaultSim fsim(nl);
  PathDelayFault fp;
  fp.path.nodes = {nl.find("a"), nl.find("c"), nl.find("e"), nl.find("g")};
  fp.rising = true;
  const auto trs = transition_faults_along(nl, fp);
  const NecessaryAnalysis ina = input_necessary_assignments(nl, fp);
  ASSERT_FALSE(ina.undetectable);

  // Enumerate all 256 tests of the 4-input combinational circuit.
  for (std::uint32_t bits = 0; bits < (1u << 8); ++bits) {
    BroadsideTest t;
    for (int i = 0; i < 4; ++i) {
      t.v1.push_back((bits >> i) & 1u);
      t.v2.push_back((bits >> (4 + i)) & 1u);
    }
    bool detects_all = true;
    for (const TransitionFault& tf : trs) {
      if (!fsim.detects(t, tf)) {
        detects_all = false;
        break;
      }
    }
    if (!detects_all) continue;
    // This test detects the TPDF: it must satisfy every INA.
    for (const Assignment& a : ina.input_assignments) {
      std::size_t pi_index = 0;
      for (; pi_index < nl.num_inputs(); ++pi_index) {
        if (nl.inputs()[pi_index] == a.where.node) break;
      }
      ASSERT_LT(pi_index, nl.num_inputs());
      const auto& pattern = a.where.frame == Frame::k1 ? t.v1 : t.v2;
      EXPECT_EQ(pattern[pi_index] != 0, a.value)
          << "INA violated at input " << nl.gate(a.where.node).name;
    }
  }
}

TEST(Necessary, ProbingFindsExtraAssignments) {
  // In fig1, the path b-c-e (rising at b) forces a = 0 under p2 (so the OR
  // side input is non-controlling). Probing should also pin d = 1 under p2
  // via the step-3 conditions, and these must not conflict.
  const Netlist nl = testing::make_fig1_circuit();
  PathDelayFault fp;
  fp.path.nodes = {nl.find("b"), nl.find("c"), nl.find("e")};
  fp.rising = true;
  const NecessaryAnalysis ina = input_necessary_assignments(nl, fp, 2);
  ASSERT_FALSE(ina.undetectable);
  EXPECT_GE(ina.input_assignments.size(), 4u);
}

TEST(Necessary, S27PathsResolveWithoutCrashing) {
  const Netlist nl = make_s27();
  const PathEnumeration paths = enumerate_all_paths(nl, 1000);
  ASSERT_TRUE(paths.complete);
  std::size_t undetectable = 0;
  for (const Path& p : paths.paths) {
    for (const bool rising : {true, false}) {
      const NecessaryAnalysis na =
          input_necessary_assignments(nl, {p, rising});
      if (na.undetectable) ++undetectable;
    }
  }
  // The dissertation's Table 2.1 reports 31 of 56 s27 TPDFs undetectable;
  // our preprocessing alone must find a nontrivial share of them.
  EXPECT_GT(undetectable, 0u);
  EXPECT_LT(undetectable, 2 * paths.paths.size());
}

}  // namespace
}  // namespace fbt
