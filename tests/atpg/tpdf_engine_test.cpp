#include "atpg/tpdf_engine.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"
#include "test_circuits.hpp"

namespace fbt {
namespace {

std::vector<PathDelayFault> all_path_faults(const Netlist& nl,
                                            std::size_t cap = 4000) {
  const PathEnumeration e = enumerate_all_paths(nl, cap);
  std::vector<PathDelayFault> faults;
  for (const Path& p : e.paths) {
    faults.push_back({p, true});
    faults.push_back({p, false});
  }
  return faults;
}

TEST(TpdfEngine, ResolvesEveryS27Fault) {
  const Netlist nl = make_s27();
  const auto faults = all_path_faults(nl);
  // s27 has 28 paths -> 56 transition path delay faults (Table 2.1).
  EXPECT_EQ(faults.size(), 56u);

  TpdfEngine engine(nl, TpdfEngineConfig{});
  const TpdfRunReport report = engine.run(faults);
  EXPECT_EQ(report.num_faults, 56u);
  EXPECT_EQ(report.detected + report.undetectable + report.aborted, 56u);
  EXPECT_EQ(report.aborted, 0u);  // tiny circuit: everything resolves
  EXPECT_GT(report.detected, 0u);
  EXPECT_GT(report.undetectable, 0u);
  // Consistency of the phase breakdown.
  EXPECT_EQ(report.detected,
            report.detected_fsim + report.detected_heuristic +
                report.detected_bnb);
  EXPECT_LE(report.detected, report.detectable_upper_bound);
}

TEST(TpdfEngine, DetectedFaultsHaveVerifiedTests) {
  const Netlist nl = make_s27();
  const auto faults = all_path_faults(nl);
  TpdfEngine engine(nl, TpdfEngineConfig{});
  const TpdfRunReport report = engine.run(faults);

  // Every fault reported detected must be detected by some test in the
  // report's test set (all of its transition faults by the same test).
  BroadsideFaultSim fsim(nl);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (report.per_fault[i].status != TpdfStatus::kDetected) continue;
    const auto trs = transition_faults_along(nl, faults[i]);
    bool some_test_detects_all = false;
    for (const BroadsideTest& t : report.tests) {
      bool all = true;
      for (const TransitionFault& tf : trs) {
        if (!fsim.detects(t, tf)) {
          all = false;
          break;
        }
      }
      if (all) {
        some_test_detects_all = true;
        break;
      }
    }
    EXPECT_TRUE(some_test_detects_all)
        << path_fault_name(nl, faults[i]) << " (phase "
        << static_cast<int>(report.per_fault[i].phase) << ")";
  }
}

TEST(TpdfEngine, UndetectableVerdictsAreConsistentWithExhaustion) {
  // On the Fig. 2.1 circuit the c-d-e path fault must be reported
  // undetectable by preprocessing.
  const Netlist nl = testing::make_fig21_circuit();
  PathDelayFault fp;
  fp.path.nodes = {nl.find("c"), nl.find("d"), nl.find("e")};
  fp.rising = true;
  TpdfEngine engine(nl, TpdfEngineConfig{});
  const TpdfRunReport report = engine.run({fp});
  ASSERT_EQ(report.per_fault.size(), 1u);
  EXPECT_EQ(report.per_fault[0].status, TpdfStatus::kUndetectable);
  EXPECT_EQ(report.per_fault[0].phase, TpdfPhase::kPreprocessing);
}

TEST(TpdfEngine, RobustlyTestablePathIsDetected) {
  const Netlist nl = testing::make_fig2_circuit();
  PathDelayFault fp;
  fp.path.nodes = {nl.find("a"), nl.find("c"), nl.find("e"), nl.find("g")};
  fp.rising = true;
  TpdfEngine engine(nl, TpdfEngineConfig{});
  const TpdfRunReport report = engine.run({fp});
  ASSERT_EQ(report.per_fault.size(), 1u);
  EXPECT_EQ(report.per_fault[0].status, TpdfStatus::kDetected);
}

}  // namespace
}  // namespace fbt
