// Property tests for the two-frame implication engine against exhaustive
// enumeration on small random circuits.
#include <gtest/gtest.h>

#include "atpg/implicator.hpp"
#include "circuits/synth.hpp"
#include "sim/seqsim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

struct TinyCircuit {
  Netlist netlist;
  std::size_t free_bits;  ///< PI1 + PI2 + PPI1
};

TinyCircuit make_tiny(std::uint64_t seed) {
  SynthParams p;
  p.name = "tiny" + std::to_string(seed);
  p.num_inputs = 3;
  p.num_outputs = 2;
  p.num_flops = 2;
  p.num_gates = 14;
  p.seed = seed;
  Netlist nl = generate_synthetic(p);
  const std::size_t bits = 2 * nl.num_inputs() + nl.num_flops();
  return {std::move(nl), bits};
}

/// Evaluates both frames for a full free-input assignment and returns the
/// value of `fn`.
bool eval_two_frames(const Netlist& nl, std::uint32_t bits, FrameNode fn) {
  std::vector<std::uint8_t> v1;
  std::vector<std::uint8_t> v2;
  std::vector<std::uint8_t> s1;
  std::size_t k = 0;
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    v1.push_back((bits >> k++) & 1);
  }
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    v2.push_back((bits >> k++) & 1);
  }
  for (std::size_t i = 0; i < nl.num_flops(); ++i) {
    s1.push_back((bits >> k++) & 1);
  }
  SeqSim frame1(nl);
  frame1.load_state(s1);
  frame1.step(v1);
  if (fn.frame == Frame::k1) return frame1.value(fn.node) != 0;
  SeqSim frame2(nl);
  frame2.load_state(frame1.state());
  frame2.step(v2);
  return frame2.value(fn.node) != 0;
}

class ImplicatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Soundness: whatever the implicator derives from a set of free-input
// assignments must hold in EVERY completion consistent with those inputs.
TEST_P(ImplicatorProperty, ImplicationsHoldInEveryCompletion) {
  const TinyCircuit tiny = make_tiny(GetParam());
  const Netlist& nl = tiny.netlist;
  Pcg32 rng(GetParam() * 7919 + 3);

  // Free-input coordinates in the same order as eval_two_frames' bits.
  std::vector<FrameNode> coords;
  for (const NodeId pi : nl.inputs()) coords.push_back({Frame::k1, pi});
  for (const NodeId pi : nl.inputs()) coords.push_back({Frame::k2, pi});
  for (const NodeId ff : nl.flops()) coords.push_back({Frame::k1, ff});

  for (int trial = 0; trial < 30; ++trial) {
    // Random partial assignment of ~half the free inputs.
    Implicator imp(nl);
    std::uint32_t fixed_mask = 0;
    std::uint32_t fixed_bits = 0;
    bool consistent = true;
    for (std::size_t k = 0; k < coords.size(); ++k) {
      if (!rng.chance(1, 2)) continue;
      const bool value = rng.chance(1, 2);
      fixed_mask |= 1u << k;
      if (value) fixed_bits |= 1u << k;
      if (!imp.assign(coords[k], value ? Val3::k1 : Val3::k0)) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;  // free-input literals alone never conflict,
                                // but keep the guard for safety

    const auto implied = imp.specified();
    for (std::uint32_t bits = 0; bits < (1u << tiny.free_bits); ++bits) {
      if ((bits & fixed_mask) != fixed_bits) continue;
      for (const Assignment& a : implied) {
        EXPECT_EQ(eval_two_frames(nl, bits, a.where), a.value)
            << "seed " << GetParam() << " trial " << trial;
      }
    }
  }
}

// Conflict soundness: when the implicator reports a conflict for a set of
// (frame, node, value) constraints, no completion satisfies all of them.
TEST_P(ImplicatorProperty, ConflictsAreReal) {
  const TinyCircuit tiny = make_tiny(GetParam());
  const Netlist& nl = tiny.netlist;
  Pcg32 rng(GetParam() * 104729 + 11);

  for (int trial = 0; trial < 40; ++trial) {
    // Random internal-node constraints (these CAN conflict).
    std::vector<Assignment> constraints;
    for (int k = 0; k < 4; ++k) {
      const auto node = static_cast<NodeId>(
          rng.below(static_cast<std::uint32_t>(nl.size())));
      const auto frame = rng.chance(1, 2) ? Frame::k1 : Frame::k2;
      constraints.push_back({{frame, node}, rng.chance(1, 2) != 0});
    }
    Implicator imp(nl);
    if (imp.assign_all(constraints)) continue;  // no conflict claimed

    // Claimed conflict: verify exhaustively.
    bool satisfiable = false;
    for (std::uint32_t bits = 0;
         bits < (1u << tiny.free_bits) && !satisfiable; ++bits) {
      bool all = true;
      for (const Assignment& a : constraints) {
        if (eval_two_frames(nl, bits, a.where) != a.value) {
          all = false;
          break;
        }
      }
      satisfiable = all;
    }
    EXPECT_FALSE(satisfiable) << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicatorProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace fbt
