#include "flow/bist_flow.hpp"

#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "bist/embedded.hpp"
#include "circuits/registry.hpp"
#include "circuits/synth.hpp"
#include "fault/fault_sim.hpp"
#include "jobs/job_system.hpp"
#include "netlist/flat_fanins.hpp"
#include "obs/json.hpp"
#include "obs/phase.hpp"
#include "rtl/lockstep.hpp"

namespace fbt {
namespace {

BistExperimentConfig small_experiment(const std::string& target,
                                      const std::string& driver) {
  BistExperimentConfig cfg;
  cfg.target_name = target;
  cfg.driver_name = driver;
  cfg.calibration.num_sequences = 4;
  cfg.calibration.sequence_length = 400;
  cfg.generation.segment_length = 200;
  cfg.generation.max_segment_failures = 2;
  cfg.generation.max_sequence_failures = 2;
  cfg.generation.rng_seed = 19;
  return cfg;
}

TEST(BistFlow, UnconstrainedExperimentEndToEnd) {
  const BistExperimentResult r =
      run_bist_experiment(small_experiment("s298", "buffers"));
  EXPECT_GT(r.swa_func, 0.0);
  EXPECT_FALSE(r.generation.bounded);  // buffers row: no SWA constraint
  EXPECT_GT(r.detected, 0u);
  EXPECT_GT(r.fault_coverage_percent, 20.0);
  EXPECT_GT(r.hw_area, 0.0);
  EXPECT_GT(r.circuit_area_um2, r.hw_area / 10.0);
  EXPECT_NEAR(r.overhead_percent,
              100.0 * r.hw_area / r.circuit_area_um2, 1e-9);
}

TEST(BistFlow, TaskGraphOverloadMatchesSerialReference) {
  const BistExperimentConfig cfg = small_experiment("s298", "buffers");
  const BistExperimentResult serial = run_bist_experiment(cfg);
  jobs::JobSystem jobs(4);  // the CI container may report one core
  const BistExperimentResult graph =
      run_bist_experiment(cfg, jobs, ExperimentArtifacts{});
  EXPECT_EQ(graph.run.num_tests, serial.run.num_tests);
  EXPECT_EQ(graph.run.num_seeds, serial.run.num_seeds);
  EXPECT_EQ(graph.detected, serial.detected);
  EXPECT_EQ(graph.detect_count, serial.detect_count);
  EXPECT_DOUBLE_EQ(graph.swa_func, serial.swa_func);
  EXPECT_DOUBLE_EQ(graph.fault_coverage_percent,
                   serial.fault_coverage_percent);
}

#if FBT_OBS_ENABLED
TEST(BistFlow, ChromeTraceShowsTheTaskGraphAcrossWorkers) {
  // The exported trace of a multi-threaded run must form a real task graph:
  // every parent edge resolves to a recorded span, spans land on more than
  // one worker row (tid), and every flow arrow's start has a matching
  // finish. This is the acceptance pin for cross-worker trace propagation.
  obs::PhaseTrace::instance().clear();
  const BistExperimentConfig cfg = small_experiment("s298", "buffers");
  jobs::JobSystem jobs(4);
  (void)run_bist_experiment(cfg, jobs, ExperimentArtifacts{});

  const std::string json = obs::PhaseTrace::instance().chrome_trace_json();
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(json, doc, error)) << error;
  ASSERT_TRUE(doc.is_array());

  std::set<double> span_ids;
  std::set<double> tids;
  std::set<double> flow_starts;
  std::set<double> flow_finishes;
  bool saw_experiment_span = false;
  for (const obs::JsonValue& event : doc.array) {
    const std::string ph = event.find("ph")->as_string("");
    if (ph == "X") {
      span_ids.insert(event.find("args")->find("span_id")->as_number());
      tids.insert(event.find("tid")->as_number());
      saw_experiment_span |=
          event.find("name")->as_string("") == "bist_experiment";
    } else if (ph == "s") {
      flow_starts.insert(event.find("id")->as_number());
    } else if (ph == "f") {
      flow_finishes.insert(event.find("id")->as_number());
    }
  }
  EXPECT_TRUE(saw_experiment_span);
  // Work actually spread across workers: more than one timeline row. (On a
  // single-core machine the helping waiter may legitimately execute every
  // task inline, so only assert when real parallelism is available.)
  if (std::thread::hardware_concurrency() > 1) EXPECT_GE(tids.size(), 2u);
  // Correct parent/child edges: every non-zero parent is a recorded span.
  for (const obs::JsonValue& event : doc.array) {
    if (event.find("ph")->as_string("") != "X") continue;
    const double parent =
        event.find("args")->find("parent_span_id")->as_number();
    if (parent != 0.0) EXPECT_EQ(span_ids.count(parent), 1u) << parent;
  }
  // Flow arrows pair submit sites with execution sites.
  EXPECT_FALSE(flow_starts.empty());
  EXPECT_EQ(flow_starts, flow_finishes);
}
#endif  // FBT_OBS_ENABLED

TEST(BistFlow, SuppliedArtifactsAreBitIdenticalToDerived) {
  // The serving cache hands pre-computed artifacts to the flow; supplying
  // them must not change a single result byte versus deriving them.
  const BistExperimentConfig cfg = small_experiment("s298", "buffers");
  jobs::JobSystem jobs(4);
  const BistExperimentResult derived =
      run_bist_experiment(cfg, jobs, ExperimentArtifacts{});

  ExperimentArtifacts artifacts;
  artifacts.target =
      std::make_shared<const Netlist>(load_benchmark(cfg.target_name));
  artifacts.driver = std::make_shared<const Netlist>(
      make_buffers_block(artifacts.target->num_inputs()));
  artifacts.flat = std::make_shared<const FlatFanins>(*artifacts.target);
  artifacts.faults = std::make_shared<const TransitionFaultList>(
      TransitionFaultList::collapsed(*artifacts.target));
  artifacts.swa_func_percent = derived.swa_func;

  const BistExperimentResult supplied =
      run_bist_experiment(cfg, jobs, artifacts);
  EXPECT_EQ(supplied.detect_count, derived.detect_count);
  EXPECT_EQ(supplied.run.num_tests, derived.run.num_tests);
  EXPECT_EQ(supplied.run.num_seeds, derived.run.num_seeds);
  EXPECT_DOUBLE_EQ(supplied.swa_func, derived.swa_func);
  EXPECT_DOUBLE_EQ(supplied.fault_coverage_percent,
                   derived.fault_coverage_percent);
  ASSERT_EQ(supplied.run.first_detect.size(), derived.run.first_detect.size());
  for (std::size_t i = 0; i < derived.run.first_detect.size(); ++i) {
    EXPECT_EQ(supplied.run.first_detect[i].test,
              derived.run.first_detect[i].test) << i;
    EXPECT_EQ(supplied.run.first_detect[i].seed,
              derived.run.first_detect[i].seed) << i;
  }
}

TEST(BistFlow, ConstrainedExperimentBoundsSwitching) {
  const BistExperimentResult r =
      run_bist_experiment(small_experiment("s298", "s386"));
  EXPECT_TRUE(r.generation.bounded);
  EXPECT_GT(r.swa_func, 0.0);
  EXPECT_LE(r.run.peak_swa, r.swa_func + 1e-9);
}

TEST(BistFlow, ConstraintsOnlyLowerTheBound) {
  const BistExperimentResult free =
      run_bist_experiment(small_experiment("s298", "buffers"));
  const BistExperimentResult tied =
      run_bist_experiment(small_experiment("s298", "s386"));
  // A driving block filters the input space, so the functional peak under it
  // cannot exceed the unconstrained peak by more than simulation noise.
  EXPECT_LE(tied.swa_func, free.swa_func * 1.15);
}

TEST(BistFlow, SequenceReductionPreservesCoverage) {
  BistExperimentConfig cfg = small_experiment("s298", "buffers");
  cfg.reduce_sequences = true;
  const BistExperimentResult reduced = run_bist_experiment(cfg);
  cfg.reduce_sequences = false;
  const BistExperimentResult full = run_bist_experiment(cfg);

  EXPECT_LE(reduced.run.num_seeds, reduced.seeds_before_reduction);
  EXPECT_LE(reduced.run.sequences.size(),
            reduced.sequences_before_reduction);
  // Same construction -> same detection credit; the kept tests must regrade
  // to the same coverage.
  EXPECT_EQ(reduced.detected, full.detected);
  BroadsideFaultSim fsim(reduced.target);
  std::vector<std::uint32_t> regraded(reduced.faults.size(), 0);
  fsim.grade(reduced.run.tests, reduced.faults, regraded, 1);
  std::size_t covered = 0;
  for (const std::uint32_t c : regraded) covered += (c >= 1);
  EXPECT_EQ(covered, reduced.detected);
}

TEST(BistFlow, ParallelGradingReproducesTheSerialFlowExactly) {
  // num_threads only shards the fault grading; every committed segment,
  // every detect count, and the reduced sequence set must match the serial
  // flow bit for bit.
  BistExperimentConfig cfg = small_experiment("s298", "buffers");
  cfg.num_threads = 1;
  const BistExperimentResult serial = run_bist_experiment(cfg);
  cfg.num_threads = 2;
  const BistExperimentResult parallel = run_bist_experiment(cfg);

  EXPECT_EQ(parallel.detect_count, serial.detect_count);
  EXPECT_EQ(parallel.detected, serial.detected);
  EXPECT_EQ(parallel.run.num_seeds, serial.run.num_seeds);
  EXPECT_EQ(parallel.run.num_tests, serial.run.num_tests);
  ASSERT_EQ(parallel.run.sequences.size(), serial.run.sequences.size());
  for (std::size_t s = 0; s < serial.run.sequences.size(); ++s) {
    const auto& ps = parallel.run.sequences[s].segments;
    const auto& ss = serial.run.sequences[s].segments;
    ASSERT_EQ(ps.size(), ss.size());
    for (std::size_t i = 0; i < ss.size(); ++i) {
      EXPECT_EQ(ps[i].seed, ss[i].seed);
      EXPECT_EQ(ps[i].length, ss[i].length);
    }
  }
}

TEST(BistFlow, PackedGradingReproducesTheSerialFlowExactly) {
  // fault_pack_width selects the grading engine (serial reference at 1,
  // PPSFP at 64) for every fault-grading step of the flow; the generated
  // plan must be bit-identical either way.
  BistExperimentConfig cfg = small_experiment("s298", "buffers");
  cfg.fault_pack_width = 1;
  const BistExperimentResult serial = run_bist_experiment(cfg);
  cfg.fault_pack_width = 64;
  const BistExperimentResult packed = run_bist_experiment(cfg);

  EXPECT_EQ(packed.detect_count, serial.detect_count);
  EXPECT_EQ(packed.detected, serial.detected);
  EXPECT_EQ(packed.run.num_seeds, serial.run.num_seeds);
  EXPECT_EQ(packed.run.num_tests, serial.run.num_tests);
  ASSERT_EQ(packed.run.sequences.size(), serial.run.sequences.size());
  for (std::size_t s = 0; s < serial.run.sequences.size(); ++s) {
    const auto& ps = packed.run.sequences[s].segments;
    const auto& ss = serial.run.sequences[s].segments;
    ASSERT_EQ(ps.size(), ss.size());
    for (std::size_t i = 0; i < ss.size(); ++i) {
      EXPECT_EQ(ps[i].seed, ss[i].seed);
      EXPECT_EQ(ps[i].length, ss[i].length);
    }
  }
}

TEST(BistFlow, EmitsRtlThatTracksTheGeneratedPlan) {
  BistExperimentConfig cfg = small_experiment("s298", "buffers");
  cfg.generation.tpg.lfsr_stages = 8;
  cfg.generation.tpg.bias_bits = 2;
  cfg.scan = equal_partition_scan_config(14);  // s298 has 14 flops
  cfg.emit_rtl = true;
  cfg.rtl_misr_stages = 16;
  const BistExperimentResult r = run_bist_experiment(cfg);
  ASSERT_TRUE(r.rtl.has_value());
  EXPECT_FALSE(r.rtl->verilog.empty());
  EXPECT_EQ(r.rtl->inventory.cut_flops, r.target.num_flops());

  // The flow's emitted RTL passes the full lockstep against the session that
  // replays its own plan.
  SessionConfig session;
  session.misr_stages = cfg.rtl_misr_stages;
  session.tpg = r.generation.tpg;
  const RtlDesign design = elaborate_verilog(r.rtl->verilog, r.rtl->top_name);
  const LockstepReport rep =
      run_lockstep(r.target, r.run, r.scan, session, *r.rtl, design);
  EXPECT_TRUE(rep.ok) << rep.mismatches << " mismatches";
  EXPECT_TRUE(rep.done_asserted);
}

TEST(BistFlow, HoldExperimentImprovesOrKeepsCoverage) {
  BistExperimentResult base =
      run_bist_experiment(small_experiment("s298", "s386"));
  const std::size_t before = base.detected;

  HoldSelectionConfig hold;
  hold.tree_height = 2;
  hold.hold_period_log2 = 2;
  hold.eval = base.generation;
  hold.eval.max_segment_failures = 1;
  hold.eval.max_sequence_failures = 1;
  hold.commit = base.generation;
  const HoldExperimentResult r = run_hold_experiment(base, hold, 31);
  EXPECT_GE(r.detected_total, before);
  EXPECT_GE(r.final_coverage_percent, base.fault_coverage_percent - 1e-9);
  EXPECT_GE(r.hw_area, base.hw_area * 0.9);
}

}  // namespace
}  // namespace fbt
