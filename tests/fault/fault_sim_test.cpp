#include "fault/fault_sim.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "circuits/synth.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "sim/seqsim.hpp"
#include "sim/value.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

BroadsideTest random_test(const Netlist& nl, Pcg32& rng) {
  BroadsideTest t;
  for (std::size_t i = 0; i < nl.num_flops(); ++i) {
    t.scan_state.push_back(rng.chance(1, 2));
  }
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    t.v1.push_back(rng.chance(1, 2));
    t.v2.push_back(rng.chance(1, 2));
  }
  return t;
}

/// Reference detection: scalar two-frame simulation of good and faulty
/// circuits, fault = stuck-at-initial in frame 2, launch checked in frame 1.
bool reference_detects(const Netlist& nl, const BroadsideTest& t,
                       const TransitionFault& f) {
  SeqSim good(nl);
  good.load_state(t.scan_state);
  good.step(t.v1);
  const std::uint8_t launch = good.value(f.line);
  const std::uint8_t init = f.rising ? 0 : 1;
  if (launch != init) return false;
  std::vector<std::uint8_t> s2 = good.state();
  if (!t.state2_override.empty()) s2 = t.state2_override;

  // Frame 2 good values.
  SeqSim good2(nl);
  good2.load_state(s2);
  good2.step(t.v2);
  if (good2.value(f.line) == init) return false;  // no final value

  // Frame 2 faulty values: force the site and re-settle manually.
  std::vector<std::uint8_t> vals(nl.size());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    vals[nl.inputs()[i]] = t.v2[i];
  }
  for (std::size_t i = 0; i < nl.num_flops(); ++i) {
    vals[nl.flops()[i]] = s2[i];
  }
  vals[f.line] = init;
  std::vector<std::uint8_t> fanins;
  for (const NodeId id : nl.eval_order()) {
    if (id == f.line) {
      vals[id] = init;
      continue;
    }
    fanins.clear();
    for (const NodeId fi : nl.gate(id).fanins) fanins.push_back(vals[fi]);
    vals[id] = eval_gate2(nl.type(id), fanins);
  }
  for (const NodeId po : nl.outputs()) {
    if (vals[po] != good2.value(po)) return true;
  }
  for (const NodeId ff : nl.flops()) {
    const NodeId d = nl.dff_input(ff);
    if (vals[d] != good2.value(d)) return true;
  }
  return false;
}

TEST(FaultSim, MatchesReferenceOnS27) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::uncollapsed(nl);
  BroadsideFaultSim sim(nl);
  Pcg32 rng(7);
  TestSet tests;
  for (int i = 0; i < 100; ++i) tests.push_back(random_test(nl, rng));

  const auto matrix = sim.detection_matrix(tests, faults);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    for (std::size_t t = 0; t < tests.size(); ++t) {
      const bool fast = (matrix[f][t / 64] >> (t % 64)) & 1u;
      const bool ref = reference_detects(nl, tests[t], faults.fault(f));
      ASSERT_EQ(fast, ref) << fault_name(nl, faults.fault(f)) << " test " << t;
    }
  }
}

TEST(FaultSim, MatchesReferenceOnSyntheticCircuit) {
  SynthParams p;
  p.name = "fsim_ref";
  p.num_inputs = 7;
  p.num_outputs = 4;
  p.num_flops = 6;
  p.num_gates = 90;
  p.seed = 31;
  const Netlist nl = generate_synthetic(p);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  BroadsideFaultSim sim(nl);
  Pcg32 rng(17);
  TestSet tests;
  for (int i = 0; i < 70; ++i) tests.push_back(random_test(nl, rng));

  const auto matrix = sim.detection_matrix(tests, faults);
  for (std::size_t f = 0; f < faults.size(); f += 3) {  // sampled
    for (std::size_t t = 0; t < tests.size(); ++t) {
      const bool fast = (matrix[f][t / 64] >> (t % 64)) & 1u;
      const bool ref = reference_detects(nl, tests[t], faults.fault(f));
      ASSERT_EQ(fast, ref) << fault_name(nl, faults.fault(f)) << " test " << t;
    }
  }
}

TEST(FaultSim, GradeMatchesDetectionMatrix) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  BroadsideFaultSim sim(nl);
  Pcg32 rng(77);
  TestSet tests;
  for (int i = 0; i < 130; ++i) tests.push_back(random_test(nl, rng));

  const auto matrix = sim.detection_matrix(tests, faults);
  std::vector<std::uint32_t> counts(faults.size(), 0);
  const std::size_t newly = sim.grade(tests, faults, counts, 1);

  std::size_t expected = 0;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    bool hit = false;
    for (const std::uint64_t w : matrix[f]) hit |= (w != 0);
    if (hit) ++expected;
    EXPECT_EQ(counts[f] >= 1, hit) << fault_name(nl, faults.fault(f));
  }
  EXPECT_EQ(newly, expected);
}

TEST(FaultSim, GradeHonoursExistingCredit) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  BroadsideFaultSim sim(nl);
  Pcg32 rng(78);
  TestSet tests;
  for (int i = 0; i < 50; ++i) tests.push_back(random_test(nl, rng));

  std::vector<std::uint32_t> counts(faults.size(), 1);  // all already done
  EXPECT_EQ(sim.grade(tests, faults, counts, 1), 0u);
}

TEST(FaultSim, NDetectNeedsMultipleTests) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  BroadsideFaultSim sim(nl);
  Pcg32 rng(79);
  TestSet tests;
  for (int i = 0; i < 200; ++i) tests.push_back(random_test(nl, rng));

  std::vector<std::uint32_t> one(faults.size(), 0);
  std::vector<std::uint32_t> five(faults.size(), 0);
  const std::size_t done1 = sim.grade(tests, faults, one, 1);
  const std::size_t done5 = sim.grade(tests, faults, five, 5);
  EXPECT_GE(done1, done5);  // 5-detect is at least as hard
  for (std::size_t f = 0; f < faults.size(); ++f) {
    EXPECT_LE(one[f], 1u);
    EXPECT_LE(five[f], 5u);
    if (five[f] >= 1) {
      EXPECT_EQ(one[f], 1u);
    }
  }
}

TEST(FaultSim, State2OverrideChangesDetection) {
  const Netlist nl = make_s27();
  BroadsideFaultSim sim(nl);
  Pcg32 rng(80);
  // Find a case where overriding s2 flips some fault's detection.
  const TransitionFaultList faults = TransitionFaultList::uncollapsed(nl);
  bool found = false;
  for (int trial = 0; trial < 200 && !found; ++trial) {
    BroadsideTest natural = random_test(nl, rng);
    BroadsideTest overridden = natural;
    overridden.state2_override = second_state(nl, natural);
    // Flip one captured state bit: an unreachable-by-this-test s2.
    overridden.state2_override[trial % nl.num_flops()] ^= 1;
    for (std::size_t f = 0; f < faults.size(); ++f) {
      const bool a = sim.detects(natural, faults.fault(f));
      const bool b = sim.detects(overridden, faults.fault(f));
      if (a != b) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

#if FBT_OBS_ENABLED
TEST(FaultSim, TestsGradedCountsOnlyLoadedTests) {
  // The grade walk exits as soon as the active fault list empties, so the
  // fault.tests_graded counter must advance by the tests actually loaded --
  // counting tests.size() would overstate grading throughput on every
  // early-exiting call.
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  Pcg32 rng(67);
  TestSet tests;
  for (int i = 0; i < 256; ++i) tests.push_back(random_test(nl, rng));
  obs::Counter& graded = obs::registry().counter("fault.tests_graded");

  // Every fault pre-saturated: the walk loads no block at all.
  BroadsideFaultSim sim(nl);
  std::vector<std::uint32_t> counts(faults.size(), 1);
  std::uint64_t before = graded.value();
  sim.grade(tests, faults, counts, 1);
  EXPECT_EQ(graded.value() - before, 0u);

  // Fresh grade at limit 1 on 256 random tests: s27's collapsed faults all
  // drop well before the last block, so the counter must advance by full
  // 64-test blocks but stay short of the whole set -- and by the identical
  // amount for the serial and the packed engine (same block walk).
  for (const std::uint32_t width : {1u, 64u}) {
    BroadsideFaultSim engine(nl, width);
    std::fill(counts.begin(), counts.end(), 0);
    before = graded.value();
    engine.grade(tests, faults, counts, 1);
    const std::uint64_t loaded = graded.value() - before;
    EXPECT_GT(loaded, 0u) << "width=" << width;
    EXPECT_LT(loaded, tests.size()) << "width=" << width;
    EXPECT_EQ(loaded % 64, 0u) << "width=" << width;
  }
}
#endif

TEST(FaultSim, SecondStateMatchesSeqSim) {
  const Netlist nl = make_s27();
  Pcg32 rng(81);
  for (int i = 0; i < 20; ++i) {
    const BroadsideTest t = random_test(nl, rng);
    const auto s2 = second_state(nl, t);
    SeqSim sim(nl);
    sim.load_state(t.scan_state);
    sim.step(t.v1);
    EXPECT_EQ(s2, sim.state());
  }
}

}  // namespace
}  // namespace fbt
