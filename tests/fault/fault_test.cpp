#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "netlist/bench_io.hpp"

namespace fbt {
namespace {

TEST(FaultList, UncollapsedHasTwoPerEligibleLine) {
  const Netlist nl = make_s27();
  const TransitionFaultList list = TransitionFaultList::uncollapsed(nl);
  EXPECT_EQ(list.size(), 2 * nl.size());  // s27 has no constants
}

TEST(FaultList, CollapsesBufferChains) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(z)
g = AND(a, b)
h = BUF(g)
i = NOT(h)
z = NAND(i, b)
)",
                                 "chain");
  const TransitionFaultList collapsed = TransitionFaultList::collapsed(nl);
  const TransitionFaultList full = TransitionFaultList::uncollapsed(nl);
  // h collapses onto g, i collapses onto h: 4 faults removed.
  EXPECT_EQ(collapsed.size(), full.size() - 4);
  // The representatives (a, b, g, z) remain.
  EXPECT_NE(collapsed.index_of({nl.find("g"), true}),
            TransitionFaultList::npos);
  EXPECT_EQ(collapsed.index_of({nl.find("h"), true}),
            TransitionFaultList::npos);
  EXPECT_EQ(collapsed.index_of({nl.find("i"), false}),
            TransitionFaultList::npos);
}

TEST(FaultList, DoesNotCollapseAcrossFanout) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
OUTPUT(z)
b = NOT(a)
y = BUF(a)
z = BUF(b)
)",
                                 "fanout");
  const TransitionFaultList collapsed = TransitionFaultList::collapsed(nl);
  // a drives both b and y, so neither b nor y may collapse onto a;
  // z may collapse onto b (b's only fanout).
  EXPECT_NE(collapsed.index_of({nl.find("b"), true}),
            TransitionFaultList::npos);
  EXPECT_NE(collapsed.index_of({nl.find("y"), true}),
            TransitionFaultList::npos);
  EXPECT_EQ(collapsed.index_of({nl.find("z"), true}),
            TransitionFaultList::npos);
}

TEST(FaultList, DoesNotCollapseOverObservedNet) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(b)
OUTPUT(c)
b = NOT(a)
c = BUF(b)
)",
                                 "obsnet");
  const TransitionFaultList collapsed = TransitionFaultList::collapsed(nl);
  // b is itself a primary output: a fault on c is NOT equivalent to one on b
  // (b is directly observed), so c must stay.
  EXPECT_NE(collapsed.index_of({nl.find("c"), true}),
            TransitionFaultList::npos);
}

TEST(FaultList, FaultNamesReadably) {
  const Netlist nl = make_s27();
  EXPECT_EQ(fault_name(nl, {nl.find("G11"), true}), "G11/STR");
  EXPECT_EQ(fault_name(nl, {nl.find("G11"), false}), "G11/STF");
}

TEST(FaultList, FromFaultsKeepsOrder) {
  const Netlist nl = make_s27();
  std::vector<TransitionFault> subset = {{nl.find("G11"), true},
                                         {nl.find("G8"), false}};
  const TransitionFaultList list = TransitionFaultList::from_faults(subset);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.fault(0).line, nl.find("G11"));
  EXPECT_EQ(list.fault(1).line, nl.find("G8"));
  EXPECT_EQ(list.index_of({nl.find("G8"), false}), 1u);
}

}  // namespace
}  // namespace fbt
