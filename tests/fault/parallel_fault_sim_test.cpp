#include "fault/parallel_fault_sim.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

TestSet random_tests(const Netlist& nl, std::size_t count, std::uint64_t seed) {
  Pcg32 rng(seed);
  TestSet tests;
  for (std::size_t i = 0; i < count; ++i) {
    BroadsideTest t;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      t.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      t.v1.push_back(rng.chance(1, 2));
      t.v2.push_back(rng.chance(1, 2));
    }
    tests.push_back(std::move(t));
  }
  return tests;
}

std::vector<std::size_t> thread_counts_under_test() {
  const std::size_t hw = jobs::JobSystem::resolve_threads(0);
  std::vector<std::size_t> counts = {1, 2};
  if (hw != 1 && hw != 2) counts.push_back(hw);
  return counts;
}

// Acceptance criterion: bit-identical detect counts and detection matrices
// for num_threads in {1, 2, hardware_concurrency} on every registry
// benchmark.
TEST(ParallelFaultSim, MatchesSerialOnEveryRegistryBenchmark) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
    // Small circuits get several blocks; big ones one block to bound runtime.
    const std::size_t num_tests = spec.num_gates <= 1000 ? 130 : 64;
    const TestSet tests = random_tests(nl, num_tests, spec.seed + 1);

    BroadsideFaultSim serial(nl);
    std::vector<std::uint32_t> serial_counts(faults.size(), 0);
    const std::size_t serial_new = serial.grade(tests, faults, serial_counts, 2);
    const auto serial_matrix = serial.detection_matrix(tests, faults);

    for (const std::size_t threads : thread_counts_under_test()) {
      ParallelBroadsideFaultSim parallel(nl, threads);
      std::vector<std::uint32_t> counts(faults.size(), 0);
      const std::size_t fresh = parallel.grade(tests, faults, counts, 2);
      EXPECT_EQ(fresh, serial_new) << spec.name << " threads=" << threads;
      EXPECT_EQ(counts, serial_counts) << spec.name << " threads=" << threads;
      EXPECT_EQ(parallel.detection_matrix(tests, faults), serial_matrix)
          << spec.name << " threads=" << threads;
    }
  }
}

// Provenance merge criterion: the parallel grade must report the same
// first-detect hits (fault, test) and per-block stats as the serial walk,
// for every thread count -- attribution is part of the deterministic output.
TEST(ParallelFaultSim, ProvenanceMatchesSerialOnEveryRegistryBenchmark) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
    const std::size_t num_tests = spec.num_gates <= 1000 ? 130 : 64;
    const TestSet tests = random_tests(nl, num_tests, spec.seed + 5);

    BroadsideFaultSim serial(nl);
    std::vector<std::uint32_t> serial_counts(faults.size(), 0);
    GradeProvenance serial_prov;
    serial.grade(tests, faults, serial_counts, 2, &serial_prov);
    ASSERT_FALSE(serial_prov.first_hits.empty()) << spec.name;

    for (const std::size_t threads : thread_counts_under_test()) {
      ParallelBroadsideFaultSim parallel(nl, threads);
      std::vector<std::uint32_t> counts(faults.size(), 0);
      GradeProvenance prov;
      parallel.grade(tests, faults, counts, 2, &prov);
      EXPECT_EQ(prov.first_hits, serial_prov.first_hits)
          << spec.name << " threads=" << threads;
      EXPECT_EQ(prov.blocks, serial_prov.blocks)
          << spec.name << " threads=" << threads;
    }
  }
}

TEST(ParallelFaultSim, ProvenanceOnlyRecordsFreshFirstDetections) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 96, 23);

  BroadsideFaultSim serial(nl);
  std::vector<std::uint32_t> counts(faults.size(), 0);
  GradeProvenance first_pass;
  serial.grade(tests, faults, counts, 4, &first_pass);
  // Second grade of the same tests: every fault already has credit, so no
  // fault is "first detected" again.
  GradeProvenance second_pass;
  serial.grade(tests, faults, counts, 4, &second_pass);
  EXPECT_FALSE(first_pass.first_hits.empty());
  EXPECT_TRUE(second_pass.first_hits.empty());

  // First hits are sorted by fault index and name a test inside the set.
  for (std::size_t i = 1; i < first_pass.first_hits.size(); ++i) {
    EXPECT_LT(first_pass.first_hits[i - 1].fault, first_pass.first_hits[i].fault);
  }
  for (const FirstDetectHit& hit : first_pass.first_hits) {
    EXPECT_LT(hit.test, tests.size());
  }
}

// Regression for the provenance merge when shards exhaust at different
// blocks: a shard whose faults all start saturated loads zero blocks and
// contributes nothing, so the merged block list must come from whichever
// shard walked furthest -- matching the serial walk over the same initial
// credit, not the union padded with phantom entries or the intersection
// truncated to the earliest-exiting shard.
TEST(ParallelFaultSim, ProvenanceBlocksMergeAcrossEarlyExhaustingShards) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 130, 29);  // three blocks
  const std::size_t half = faults.size() / 2;

  // Saturate one half of the fault list up front; with two threads that
  // half is (most of) one shard, which exhausts before loading any block.
  for (const bool saturate_low : {true, false}) {
    std::vector<std::uint32_t> init(faults.size(), 0);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if ((f < half) == saturate_low) init[f] = 4;
    }

    BroadsideFaultSim serial(nl);
    std::vector<std::uint32_t> serial_counts = init;
    GradeProvenance serial_prov;
    serial.grade(tests, faults, serial_counts, 4, &serial_prov);
    ASSERT_GT(serial_prov.blocks.size(), 1u);  // survivors span blocks

    for (const std::size_t threads : thread_counts_under_test()) {
      ParallelBroadsideFaultSim parallel(nl, threads);
      std::vector<std::uint32_t> counts = init;
      GradeProvenance prov;
      parallel.grade(tests, faults, counts, 4, &prov);
      EXPECT_EQ(counts, serial_counts)
          << "threads=" << threads << " low=" << saturate_low;
      EXPECT_EQ(prov.first_hits, serial_prov.first_hits)
          << "threads=" << threads << " low=" << saturate_low;
      EXPECT_EQ(prov.blocks, serial_prov.blocks)
          << "threads=" << threads << " low=" << saturate_low;
    }
  }
}

TEST(ParallelFaultSim, ZeroThreadsResolvesToHardwareConcurrency) {
  const Netlist nl = make_s27();
  ParallelBroadsideFaultSim sim(nl, 0);
  EXPECT_EQ(sim.num_threads(), jobs::JobSystem::resolve_threads(0));
}

TEST(ParallelFaultSim, CarriesDetectionCreditInAndOut) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 96, 3);

  BroadsideFaultSim serial(nl);
  std::vector<std::uint32_t> serial_counts(faults.size(), 0);
  serial.grade(tests, faults, serial_counts, 4);
  const std::size_t serial_more =
      serial.grade(tests, faults, serial_counts, 4);

  ParallelBroadsideFaultSim parallel(nl, 2);
  std::vector<std::uint32_t> counts(faults.size(), 0);
  parallel.grade(tests, faults, counts, 4);
  EXPECT_EQ(parallel.grade(tests, faults, counts, 4), serial_more);
  EXPECT_EQ(counts, serial_counts);
}

class GradeEdgeCases : public ::testing::TestWithParam<std::size_t> {};

// Block-boundary test counts: 1, 63, 64, 65 tests (and a 3-block set).
TEST_P(GradeEdgeCases, SerialAndParallelAgreeAtBlockBoundaries) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, GetParam(), 11);

  for (const std::uint32_t limit : {1u, 3u}) {
    BroadsideFaultSim serial(nl);
    std::vector<std::uint32_t> serial_counts(faults.size(), 0);
    const std::size_t serial_new =
        serial.grade(tests, faults, serial_counts, limit);

    ParallelBroadsideFaultSim parallel(nl, 2);
    std::vector<std::uint32_t> counts(faults.size(), 0);
    EXPECT_EQ(parallel.grade(tests, faults, counts, limit), serial_new);
    EXPECT_EQ(counts, serial_counts);
  }
}

INSTANTIATE_TEST_SUITE_P(BlockBoundaries, GradeEdgeCases,
                         ::testing::Values(1u, 63u, 64u, 65u, 130u));

TEST(GradeEdgeCases, AllFaultsDroppedEarlySkipsRemainingBlocks) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  // Saturate every fault up front: grade must return 0, change nothing, and
  // load no blocks (the active list starts empty).
  const TestSet tests = random_tests(nl, 256, 13);
  std::vector<std::uint32_t> counts(faults.size(), 1);
  const std::vector<std::uint32_t> before = counts;

  BroadsideFaultSim serial(nl);
  EXPECT_EQ(serial.grade(tests, faults, counts, 1), 0u);
  EXPECT_EQ(counts, before);

  ParallelBroadsideFaultSim parallel(nl, 2);
  EXPECT_EQ(parallel.grade(tests, faults, counts, 1), 0u);
  EXPECT_EQ(counts, before);
}

TEST(GradeEdgeCases, DroppedFaultsStopAccumulatingMidSet) {
  // detect_limit == 1: every fault detected by an early block must keep
  // exactly count 1 no matter how many later tests also detect it.
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  TestSet tests = random_tests(nl, 64, 17);
  const std::size_t base = tests.size();
  for (std::size_t i = 0; i < base; ++i) tests.push_back(tests[i]);  // repeat

  BroadsideFaultSim serial(nl);
  std::vector<std::uint32_t> counts(faults.size(), 0);
  serial.grade(tests, faults, counts, 1);
  for (const std::uint32_t c : counts) EXPECT_LE(c, 1u);

  ParallelBroadsideFaultSim parallel(nl, 2);
  std::vector<std::uint32_t> pcounts(faults.size(), 0);
  parallel.grade(tests, faults, pcounts, 1);
  EXPECT_EQ(pcounts, counts);
}

}  // namespace
}  // namespace fbt
