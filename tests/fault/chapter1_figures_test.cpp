// Reproduces the didactic examples of dissertation Chapter 1 (Figs. 1.1-1.7)
// as executable checks on the fault model and simulator.
#include <gtest/gtest.h>

#include "fault/fault_sim.hpp"
#include "paths/path.hpp"
#include "test_circuits.hpp"

namespace fbt {
namespace {

// Fig. 1.3: the two-pattern test <001, 101> on "abd" detects the slow-to-rise
// transition fault at c (observed as 0 instead of 1 at e).
TEST(Chapter1, Fig13TransitionFaultTest) {
  const Netlist nl = testing::make_fig1_circuit();
  BroadsideFaultSim sim(nl);
  BroadsideTest test;
  test.v1 = {0, 0, 1};  // a b d
  test.v2 = {1, 0, 1};
  EXPECT_TRUE(sim.detects(test, {nl.find("c"), true}));
  // The same test launches a rising transition at a as well.
  EXPECT_TRUE(sim.detects(test, {nl.find("a"), true}));
  // But not the falling fault at c (wrong launch polarity).
  EXPECT_FALSE(sim.detects(test, {nl.find("c"), false}));
}

// Fig. 1.4: the robust test <0010, 1010> on "abdf" detects the path delay
// fault along a-c-e-g with a rising source transition; under the transition
// path delay fault model this means every transition fault along the path is
// detected by the same test.
TEST(Chapter1, Fig14RobustTestDetectsAllPathTransitionFaults) {
  const Netlist nl = testing::make_fig2_circuit();
  BroadsideFaultSim sim(nl);
  BroadsideTest test;
  test.v1 = {0, 0, 1, 0};  // a b d f
  test.v2 = {1, 0, 1, 0};

  PathDelayFault fp;
  fp.path.nodes = {nl.find("a"), nl.find("c"), nl.find("e"), nl.find("g")};
  fp.rising = true;
  const auto trs = transition_faults_along(nl, fp);
  ASSERT_EQ(trs.size(), 4u);
  for (const TransitionFault& tf : trs) {
    EXPECT_TRUE(tf.rising);  // OR/AND chain: no inversions
    EXPECT_TRUE(sim.detects(test, tf)) << fault_name(nl, tf);
  }
}

// Fig. 1.5: the non-robust variant <0011, 1010> launches the transition along
// a-c-e, but the falling off-path input f holds g statically at 1, so no
// transition appears at g in a zero-delay simulation: the transition fault at
// g is NOT detected. This is exactly why tests for transition path delay
// faults must be *strong* non-robust tests (§2.2) -- the plain non-robust
// test would miss a delay accumulating at the end of the path.
TEST(Chapter1, Fig15NonRobustTestMissesPathEndTransitionFault) {
  const Netlist nl = testing::make_fig2_circuit();
  BroadsideFaultSim sim(nl);
  BroadsideTest test;
  test.v1 = {0, 0, 1, 1};
  test.v2 = {1, 0, 1, 0};
  EXPECT_TRUE(sim.detects(test, {nl.find("a"), true}));
  EXPECT_TRUE(sim.detects(test, {nl.find("c"), true}));
  EXPECT_TRUE(sim.detects(test, {nl.find("e"), true}));
  EXPECT_FALSE(sim.detects(test, {nl.find("g"), true}));
}

// Figs. 1.6/1.7 phenomenon: with reconvergent fanout of opposite inversion
// polarity, a test can sensitize a path non-robustly while the transition
// fault at the stem goes undetected because its fault effects cancel.
TEST(Chapter1, Fig17ReconvergenceMasksTransitionFault) {
  const Netlist nl = testing::make_reconvergent_circuit();
  BroadsideFaultSim sim(nl);
  // d: 0 -> 1 with e = 0 in both patterns.
  // Good circuit p2: f = NOT(1) = 0, g = OR(1, 0) = 1, h = AND(0, 1) = 0.
  // Faulty circuit (d slow-to-rise, d stuck at 0 in p2):
  //   f = 1, g = OR(0, 0) = 0, h = AND(1, 0) = 0 -- identical at h.
  BroadsideTest test;
  test.v1 = {0, 0};  // d e
  test.v2 = {1, 0};
  EXPECT_FALSE(sim.detects(test, {nl.find("d"), true}));
  // Yet the falling fault on the inverting branch IS detected by the same
  // test (f stuck at 1 in p2 lifts h to 1 while the good h is 0): the test
  // exercises the logic but misses the stem fault -- the Fig. 1.7 situation.
  EXPECT_TRUE(sim.detects(test, {nl.find("f"), false}));
}

// The transition path delay fault model closes that gap: a test for the TPDF
// along d-g-h must detect the transition fault at d too, and no such test
// exists for this cancellation structure... unless e breaks the
// reconvergence. Verify TR(fp) polarity bookkeeping on the inverting branch.
TEST(Chapter1, TransitionPolarityFollowsInversions) {
  const Netlist nl = testing::make_reconvergent_circuit();
  PathDelayFault fp;
  fp.path.nodes = {nl.find("d"), nl.find("f"), nl.find("h")};
  fp.rising = true;
  const auto trs = transition_faults_along(nl, fp);
  ASSERT_EQ(trs.size(), 3u);
  EXPECT_TRUE(trs[0].rising);    // d rises
  EXPECT_FALSE(trs[1].rising);   // f = NOT(d) falls
  EXPECT_FALSE(trs[2].rising);   // h = AND(f, g): no inversion
}

}  // namespace
}  // namespace fbt
