// Property: structural-equivalence collapsing is detection-preserving --
// a collapsed-away fault is detected by a test exactly when its
// representative is.
#include <gtest/gtest.h>

#include "circuits/synth.hpp"
#include "fault/fault_sim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

class CollapseProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollapseProperty, EquivalentFaultsHaveIdenticalDetection) {
  SynthParams p;
  p.name = "collapse" + std::to_string(GetParam());
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flops = 4;
  p.num_gates = 80;
  p.seed = GetParam();
  const Netlist nl = generate_synthetic(p);

  // Identify the collapsed pairs exactly as the collapser does.
  struct Pair {
    TransitionFault removed;
    TransitionFault representative;
  };
  std::vector<Pair> pairs;
  for (NodeId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type != GateType::kBuf && g.type != GateType::kNot) continue;
    if (nl.fanouts(g.fanins[0]).size() != 1) continue;
    if (nl.is_output(g.fanins[0])) continue;
    const bool flip = g.type == GateType::kNot;
    for (const bool rising : {true, false}) {
      pairs.push_back({{id, rising}, {g.fanins[0], flip ? !rising : rising}});
    }
  }
  if (pairs.empty()) GTEST_SKIP() << "no collapsible chains in this seed";

  BroadsideFaultSim sim(nl);
  Pcg32 rng(GetParam() ^ 0xabcd);
  for (int t = 0; t < 120; ++t) {
    BroadsideTest test;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      test.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      test.v1.push_back(rng.chance(1, 2));
      test.v2.push_back(rng.chance(1, 2));
    }
    for (const Pair& pair : pairs) {
      EXPECT_EQ(sim.detects(test, pair.removed),
                sim.detects(test, pair.representative))
          << fault_name(nl, pair.removed) << " vs "
          << fault_name(nl, pair.representative) << " (test " << t << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace fbt
