#include "fault/diagnosis.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

TestSet random_tests(const Netlist& nl, std::size_t count, std::uint64_t seed) {
  Pcg32 rng(seed);
  TestSet tests;
  for (std::size_t i = 0; i < count; ++i) {
    BroadsideTest t;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      t.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      t.v1.push_back(rng.chance(1, 2));
      t.v2.push_back(rng.chance(1, 2));
    }
    tests.push_back(std::move(t));
  }
  return tests;
}

// Property: diagnosing the exact observation of a detected fault puts that
// fault (or a dictionary-indistinguishable one) at rank 1 with score 0.
TEST(Diagnosis, ExactObservationRanksTheFaultFirst) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 200, 31);
  const FaultDictionary dict(nl, tests, faults);

  std::size_t diagnosable = 0;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const auto obs = dict.observation_for(f);
    bool any_fail = false;
    for (const std::uint8_t b : obs) any_fail |= (b != 0);
    if (!any_fail) continue;  // undetected fault: nothing to diagnose
    ++diagnosable;
    const auto ranked = dict.diagnose(obs, 5);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked[0].score, 0u);
    // The injected fault is among the zero-score (indistinguishable) heads.
    bool found = false;
    for (const auto& c : ranked) {
      if (c.score == 0 && c.fault_index == f) found = true;
    }
    EXPECT_TRUE(found) << fault_name(nl, faults.fault(f));
  }
  EXPECT_GT(diagnosable, faults.size() / 2);
}

TEST(Diagnosis, NoisyObservationStillRanksTheFaultHighly) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 300, 32);
  const FaultDictionary dict(nl, tests, faults);
  Pcg32 rng(99);

  std::size_t checked = 0;
  std::size_t top3 = 0;
  for (std::size_t f = 0; f < faults.size() && checked < 40; ++f) {
    auto obs = dict.observation_for(f);
    std::size_t fails = 0;
    for (const std::uint8_t b : obs) fails += b;
    if (fails < 8) continue;
    // Corrupt 2 random entries (tester noise / unmodelled behaviour).
    for (int k = 0; k < 2; ++k) {
      obs[rng.below(static_cast<std::uint32_t>(obs.size()))] ^= 1;
    }
    ++checked;
    const auto ranked = dict.diagnose(obs, 3);
    for (const auto& c : ranked) {
      if (c.fault_index == f) {
        ++top3;
        break;
      }
    }
  }
  ASSERT_GT(checked, 8u);
  EXPECT_GT(top3 * 10, checked * 8);  // >80% in the top 3 despite noise
}

TEST(Diagnosis, FailingTestsRoundTrip) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 100, 33);
  const FaultDictionary dict(nl, tests, faults);
  EXPECT_EQ(dict.num_tests(), 100u);
  EXPECT_EQ(dict.num_faults(), faults.size());
  for (std::size_t f = 0; f < faults.size(); f += 7) {
    const auto failing = dict.failing_tests(f);
    const auto obs = dict.observation_for(f);
    std::size_t count = 0;
    for (const std::uint8_t b : obs) count += b;
    EXPECT_EQ(failing.size(), count);
    for (const std::size_t t : failing) {
      EXPECT_EQ(obs[t], 1);
    }
  }
}

}  // namespace
}  // namespace fbt
