#include "fault/scan_test_types.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

TEST(ScanTestTypes, SkewedLoadShiftsWithinChains) {
  const Netlist nl = make_s27();  // 3 flops, 1 chain
  const ScanChains scan(nl, {});
  const std::vector<std::uint8_t> s1{1, 0, 1};
  const std::vector<std::uint8_t> scan_in{0};
  const std::vector<std::uint8_t> v(nl.num_inputs(), 0);
  const BroadsideTest t =
      make_skewed_load_test(nl, scan, s1, scan_in, v, v);
  // One shift: position 0 <- scan-in, position i <- s1[i-1].
  EXPECT_EQ(t.state2_override, (std::vector<std::uint8_t>{0, 1, 0}));
  EXPECT_EQ(t.scan_state, s1);
}

TEST(ScanTestTypes, EnhancedScanKeepsBothStates) {
  const std::vector<std::uint8_t> s1{1, 1, 0};
  const std::vector<std::uint8_t> s2{0, 0, 1};
  const std::vector<std::uint8_t> v{1, 0, 1, 0};
  const BroadsideTest t = make_enhanced_scan_test(s1, s2, v, v);
  EXPECT_EQ(t.scan_state, s1);
  EXPECT_EQ(t.state2_override, s2);
}

// §1.3's coverage ordering: with equal test counts, enhanced scan reaches at
// least the broadside coverage (it can realize every broadside pair and
// more); skewed load is incomparable in general but lands in the same range.
TEST(ScanTestTypes, CoverageOrderingOnS27) {
  const Netlist nl = make_s27();
  const ScanChains scan(nl, {});
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  BroadsideFaultSim sim(nl);
  Pcg32 rng(42);

  const std::size_t count = 400;
  TestSet broadside;
  TestSet skewed;
  TestSet enhanced;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> s1;
    std::vector<std::uint8_t> s2;
    std::vector<std::uint8_t> v1;
    std::vector<std::uint8_t> v2;
    std::vector<std::uint8_t> scan_in;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      s1.push_back(rng.chance(1, 2));
      s2.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      v1.push_back(rng.chance(1, 2));
      v2.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < scan.num_chains(); ++k) {
      scan_in.push_back(rng.chance(1, 2));
    }
    broadside.push_back(BroadsideTest{s1, v1, v2, {}});
    skewed.push_back(make_skewed_load_test(nl, scan, s1, scan_in, v1, v2));
    enhanced.push_back(make_enhanced_scan_test(s1, s2, v1, v2));
  }

  auto coverage = [&](const TestSet& tests) {
    std::vector<std::uint32_t> det(faults.size(), 0);
    sim.grade(tests, faults, det, 1);
    std::size_t covered = 0;
    for (const std::uint32_t c : det) covered += (c >= 1);
    return covered;
  };
  const std::size_t cb = coverage(broadside);
  const std::size_t cs = coverage(skewed);
  const std::size_t ce = coverage(enhanced);
  EXPECT_GE(ce, cb);  // enhanced scan subsumes broadside state pairs
  EXPECT_GT(cs, 0u);
  EXPECT_GT(cb, faults.size() / 2);
}

}  // namespace
}  // namespace fbt
