#include "fault/compaction.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

TestSet random_tests(const Netlist& nl, std::size_t count, std::uint64_t seed) {
  Pcg32 rng(seed);
  TestSet tests;
  for (std::size_t i = 0; i < count; ++i) {
    BroadsideTest t;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      t.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      t.v1.push_back(rng.chance(1, 2));
      t.v2.push_back(rng.chance(1, 2));
    }
    tests.push_back(std::move(t));
  }
  return tests;
}

std::size_t coverage_of(const Netlist& nl, const TestSet& tests,
                        const TransitionFaultList& faults) {
  BroadsideFaultSim sim(nl);
  std::vector<std::uint32_t> det(faults.size(), 0);
  sim.grade(tests, faults, det, 1);
  std::size_t covered = 0;
  for (const std::uint32_t c : det) covered += (c >= 1);
  return covered;
}

class CompactionPasses
    : public ::testing::TestWithParam<std::uint64_t> {};  // RNG seeds

// Property: both passes preserve full coverage and never grow the set.
TEST_P(CompactionPasses, PreserveCoverage) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 150, GetParam());
  const std::size_t full = coverage_of(nl, tests, faults);

  using CompactionFn = std::vector<std::size_t> (*)(
      const Netlist&, const TestSet&, const TransitionFaultList&);
  for (const CompactionFn compaction :
       {static_cast<CompactionFn>(reverse_order_compaction),
        static_cast<CompactionFn>(forward_looking_compaction)}) {
    const auto kept = compaction(nl, tests, faults);
    EXPECT_LE(kept.size(), tests.size());
    TestSet reduced;
    for (const std::size_t t : kept) reduced.push_back(tests[t]);
    EXPECT_EQ(coverage_of(nl, reduced, faults), full);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionPasses,
                         ::testing::Values(1u, 17u, 23u, 99u, 1234u));

TEST(Compaction, ForwardLookingNotWorseThanReverse) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::size_t fl_total = 0;
  std::size_t ro_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TestSet tests = random_tests(nl, 200, seed);
    fl_total += forward_looking_compaction(nl, tests, faults).size();
    ro_total += reverse_order_compaction(nl, tests, faults).size();
  }
  EXPECT_LE(fl_total, ro_total + 4);  // on average at least as good
}

TEST(Compaction, DropsRedundantDuplicates) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  TestSet tests = random_tests(nl, 40, 5);
  const std::size_t base = tests.size();
  // Duplicate the whole set: half must be droppable.
  for (std::size_t i = 0; i < base; ++i) tests.push_back(tests[i]);
  const auto kept = forward_looking_compaction(nl, tests, faults);
  EXPECT_LE(kept.size(), base);
}

TEST(Compaction, PrecomputedPerTestListsMatchRecomputation) {
  // The overloads taking PerTestFaults must agree with the convenience
  // overloads that simulate the matrix themselves -- one simulation feeding
  // all passes instead of one per pass.
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 120, 21);
  const PerTestFaults per_test = detected_by_test(nl, tests, faults);

  EXPECT_EQ(reverse_order_compaction(per_test, faults.size()),
            reverse_order_compaction(nl, tests, faults));
  EXPECT_EQ(forward_looking_compaction(per_test, faults.size()),
            forward_looking_compaction(nl, tests, faults));

  std::vector<std::size_t> group_of(tests.size());
  for (std::size_t t = 0; t < tests.size(); ++t) group_of[t] = t / 15;
  EXPECT_EQ(reduce_groups(per_test, faults.size(), group_of, 8),
            reduce_groups(nl, tests, faults, group_of, 8));
}

TEST(Compaction, ParallelMatrixGivesIdenticalPasses) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 120, 23);
  EXPECT_EQ(detected_by_test(nl, tests, faults, 2),
            detected_by_test(nl, tests, faults, 1));
  std::vector<std::size_t> group_of(tests.size());
  for (std::size_t t = 0; t < tests.size(); ++t) group_of[t] = t / 10;
  EXPECT_EQ(reduce_groups(nl, tests, faults, group_of, 12, 2),
            reduce_groups(nl, tests, faults, group_of, 12, 1));
}

TEST(Compaction, GroupReductionKeepsCoverage) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 160, 7);
  // 16 groups of 10 tests (like segments from 16 seeds).
  std::vector<std::size_t> group_of(tests.size());
  for (std::size_t t = 0; t < tests.size(); ++t) group_of[t] = t / 10;
  const auto kept_groups = reduce_groups(nl, tests, faults, group_of, 16);
  EXPECT_LE(kept_groups.size(), 16u);

  TestSet reduced;
  for (std::size_t t = 0; t < tests.size(); ++t) {
    if (std::find(kept_groups.begin(), kept_groups.end(), group_of[t]) !=
        kept_groups.end()) {
      reduced.push_back(tests[t]);
    }
  }
  EXPECT_EQ(coverage_of(nl, reduced, faults),
            coverage_of(nl, tests, faults));
}

}  // namespace
}  // namespace fbt
