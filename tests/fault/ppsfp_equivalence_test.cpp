// PPSFP packed-grading equivalence suite.
//
// The serial engine (fault_pack_width == 1, one fault at a time, 64 tests
// per word) is the reference; the PPSFP engine (up to 64 faults per word
// against the shared good-machine trace) must reproduce its detect counts,
// detection matrices, and first-detect provenance bit for bit -- at every
// pack width, composed with every thread-sharding setting, on every registry
// benchmark.
#include "fault/parallel_fault_sim.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

TestSet random_tests(const Netlist& nl, std::size_t count, std::uint64_t seed) {
  Pcg32 rng(seed);
  TestSet tests;
  for (std::size_t i = 0; i < count; ++i) {
    BroadsideTest t;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      t.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      t.v1.push_back(rng.chance(1, 2));
      t.v2.push_back(rng.chance(1, 2));
    }
    tests.push_back(std::move(t));
  }
  return tests;
}

std::vector<std::size_t> thread_counts_under_test() {
  const std::size_t hw = jobs::JobSystem::resolve_threads(0);
  std::vector<std::size_t> counts = {1, 2};
  if (hw != 1 && hw != 2) counts.push_back(hw);
  return counts;
}

constexpr std::uint32_t kWidths[] = {8, 64};

// Acceptance criterion: detect counts and first-detect provenance identical
// to the serial engine for pack widths {1, 8, 64} x threads {1, 2, hw} on
// every registry benchmark, at a dropping limit (1) and an n-detect limit
// (3).
TEST(PpsfpEquivalence, GradeMatchesSerialOnEveryRegistryBenchmark) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
    // Small circuits get several blocks; big ones one block to bound runtime.
    const std::size_t num_tests = spec.num_gates <= 1000 ? 130 : 64;
    const TestSet tests = random_tests(nl, num_tests, spec.seed + 9);

    for (const std::uint32_t limit : {1u, 3u}) {
      BroadsideFaultSim serial(nl);
      std::vector<std::uint32_t> serial_counts(faults.size(), 0);
      GradeProvenance serial_prov;
      const std::size_t serial_new =
          serial.grade(tests, faults, serial_counts, limit, &serial_prov);

      for (const std::uint32_t width : kWidths) {
        for (const std::size_t threads : thread_counts_under_test()) {
          ParallelBroadsideFaultSim packed(nl, threads, nullptr, width);
          std::vector<std::uint32_t> counts(faults.size(), 0);
          GradeProvenance prov;
          const std::size_t fresh =
              packed.grade(tests, faults, counts, limit, &prov);
          EXPECT_EQ(fresh, serial_new) << spec.name << " width=" << width
                                       << " threads=" << threads
                                       << " limit=" << limit;
          EXPECT_EQ(counts, serial_counts)
              << spec.name << " width=" << width << " threads=" << threads
              << " limit=" << limit;
          EXPECT_EQ(prov.first_hits, serial_prov.first_hits)
              << spec.name << " width=" << width << " threads=" << threads
              << " limit=" << limit;
          EXPECT_EQ(prov.blocks, serial_prov.blocks)
              << spec.name << " width=" << width << " threads=" << threads
              << " limit=" << limit;
        }
      }
    }
  }
}

// The no-dropping per-test matrix must also be identical: it exercises the
// packed walk without the active-list pruning the grade path relies on.
TEST(PpsfpEquivalence, DetectionMatrixMatchesSerialOnEveryRegistryBenchmark) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist nl = load_benchmark(spec.name);
    const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
    const std::size_t num_tests = spec.num_gates <= 1000 ? 130 : 64;
    const TestSet tests = random_tests(nl, num_tests, spec.seed + 10);

    BroadsideFaultSim serial(nl);
    const auto serial_matrix = serial.detection_matrix(tests, faults);

    for (const std::uint32_t width : kWidths) {
      for (const std::size_t threads : thread_counts_under_test()) {
        ParallelBroadsideFaultSim packed(nl, threads, nullptr, width);
        EXPECT_EQ(packed.detection_matrix(tests, faults), serial_matrix)
            << spec.name << " width=" << width << " threads=" << threads;
      }
    }
  }
}

// state2_override replaces the captured state between frames (the §4.3
// sequence-reduction path); the packed engine must honor it identically.
TEST(PpsfpEquivalence, State2OverrideMatchesSerial) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::uncollapsed(nl);
  TestSet tests = random_tests(nl, 96, 41);
  Pcg32 rng(42);
  for (std::size_t i = 0; i < tests.size(); i += 2) {
    // Every other test gets an arbitrary (possibly unreachable) s2.
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      tests[i].state2_override.push_back(rng.chance(1, 2));
    }
  }

  BroadsideFaultSim serial(nl);
  std::vector<std::uint32_t> serial_counts(faults.size(), 0);
  GradeProvenance serial_prov;
  serial.grade(tests, faults, serial_counts, 3, &serial_prov);
  const auto serial_matrix = serial.detection_matrix(tests, faults);

  for (const std::uint32_t width : kWidths) {
    BroadsideFaultSim packed(nl, width);
    std::vector<std::uint32_t> counts(faults.size(), 0);
    GradeProvenance prov;
    packed.grade(tests, faults, counts, 3, &prov);
    EXPECT_EQ(counts, serial_counts) << "width=" << width;
    EXPECT_EQ(prov.first_hits, serial_prov.first_hits) << "width=" << width;
    EXPECT_EQ(packed.detection_matrix(tests, faults), serial_matrix)
        << "width=" << width;
  }
}

// The single-query convenience must agree fault by fault, test by test.
TEST(PpsfpEquivalence, DetectsAgreesWithSerial) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::uncollapsed(nl);
  const TestSet tests = random_tests(nl, 24, 47);

  BroadsideFaultSim serial(nl);
  BroadsideFaultSim packed(nl, 64);
  for (const BroadsideTest& t : tests) {
    for (std::size_t f = 0; f < faults.size(); ++f) {
      EXPECT_EQ(packed.detects(t, faults.fault(f)),
                serial.detects(t, faults.fault(f)))
          << "fault " << f;
    }
  }
}

TEST(PpsfpEquivalence, PackWidthIsClampedToLaneRange) {
  const Netlist nl = make_s27();
  EXPECT_EQ(BroadsideFaultSim(nl, 0).fault_pack_width(), 1u);
  EXPECT_EQ(BroadsideFaultSim(nl, 1).fault_pack_width(), 1u);
  EXPECT_EQ(BroadsideFaultSim(nl, 17).fault_pack_width(), 17u);
  EXPECT_EQ(BroadsideFaultSim(nl, 200).fault_pack_width(), 64u);
}

#if FBT_OBS_ENABLED
TEST(PpsfpEquivalence, PackEfficiencyCountersTrackThePackedEngineOnly) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const TestSet tests = random_tests(nl, 64, 53);

  const auto groups = [] {
    return obs::registry().counter("fault.pack_groups_simulated").value();
  };
  const auto wasted = [] {
    return obs::registry().counter("fault.pack_lanes_wasted").value();
  };

  BroadsideFaultSim serial(nl);
  std::vector<std::uint32_t> counts(faults.size(), 0);
  const std::uint64_t groups0 = groups();
  serial.grade(tests, faults, counts, 3);
  EXPECT_EQ(groups(), groups0);  // serial engine never packs

  BroadsideFaultSim packed(nl, 64);
  std::fill(counts.begin(), counts.end(), 0);
  const std::uint64_t groups1 = groups();
  const std::uint64_t wasted1 = wasted();
  packed.grade(tests, faults, counts, 3);
  const std::uint64_t simulated = groups() - groups1;
  const std::uint64_t idle = wasted() - wasted1;
  EXPECT_GT(simulated, 0u);
  // Wasted lanes are bounded by the lanes offered: groups x width.
  EXPECT_LT(idle, simulated * 64);
}
#endif

}  // namespace
}  // namespace fbt
