#include "paths/classify.hpp"

#include <gtest/gtest.h>

#include "test_circuits.hpp"

namespace fbt {
namespace {

PathDelayFault fig2_path(const Netlist& nl) {
  PathDelayFault fp;
  fp.path.nodes = {nl.find("a"), nl.find("c"), nl.find("e"), nl.find("g")};
  fp.rising = true;
  return fp;
}

// Fig. 1.4's test is the canonical robust test.
TEST(Classify, Fig14TestIsRobust) {
  const Netlist nl = testing::make_fig2_circuit();
  BroadsideTest test;
  test.v1 = {0, 0, 1, 0};  // a b d f
  test.v2 = {1, 0, 1, 0};
  EXPECT_EQ(classify_path_test(nl, test, fig2_path(nl)),
            PathTestClass::kRobust);
}

// Fig. 1.5's test (off-path f falls) is non-robust: f = OR-side input of g
// transitions 1 -> 0 while the on-path input e rises (controlling ->
// non-controlling is NOT the case here -- e goes 0 -> 1 which IS
// non-controlling -> controlling for OR... g = OR(e, f): controlling value
// 1; e goes 0 (non-controlling) to 1 (controlling). The robust side rule
// triggers for transitions TO the non-controlling value; here the hazard is
// f's 1 -> 0: at p1 f = 1 = controlling, masking the launch edge -- weak
// non-robust because no transition appears at g.
TEST(Classify, Fig15TestIsWeakNonRobust) {
  const Netlist nl = testing::make_fig2_circuit();
  BroadsideTest test;
  test.v1 = {0, 0, 1, 1};
  test.v2 = {1, 0, 1, 0};
  EXPECT_EQ(classify_path_test(nl, test, fig2_path(nl)),
            PathTestClass::kWeakNonRobust);
}

TEST(Classify, BlockedSecondPatternIsNotATest) {
  const Netlist nl = testing::make_fig2_circuit();
  BroadsideTest test;
  test.v1 = {0, 0, 1, 0};
  test.v2 = {1, 0, 0, 0};  // d = 0 blocks e = AND(c, d)
  EXPECT_EQ(classify_path_test(nl, test, fig2_path(nl)),
            PathTestClass::kNotATest);
}

TEST(Classify, MissingLaunchIsNotATest) {
  const Netlist nl = testing::make_fig2_circuit();
  BroadsideTest test;
  test.v1 = {1, 0, 1, 0};  // a already 1: no rising launch
  test.v2 = {1, 0, 1, 0};
  EXPECT_EQ(classify_path_test(nl, test, fig2_path(nl)),
            PathTestClass::kNotATest);
}

// The reconvergent circuit's structure makes the stem path d-g-h untestable
// with d rising: f = NOT(d) falls to AND-h's controlling value under the
// second pattern, so the classifier must reject the sensitization outright.
TEST(Classify, ReconvergentStemPathIsBlocked) {
  const Netlist nl = testing::make_reconvergent_circuit();
  // d: 0 -> 1, e steady 0: p2 has f = 0 = controlling for h = AND(f, g).
  BroadsideTest test;
  test.v1 = {0, 0};  // d e
  test.v2 = {1, 0};
  PathDelayFault fp;
  fp.path.nodes = {nl.find("d"), nl.find("g"), nl.find("h")};
  fp.rising = true;
  EXPECT_EQ(classify_path_test(nl, test, fp), PathTestClass::kNotATest);
}

// §2.2's connection: whenever a test detects every transition fault along
// the path (the TPDF criterion), the classifier reports at least strong
// non-robust... verified constructively on Fig. 1.4.
TEST(Classify, TpdfTestsAreAtLeastStrongNonRobust) {
  const Netlist nl = testing::make_fig2_circuit();
  BroadsideTest test;
  test.v1 = {0, 0, 1, 0};
  test.v2 = {1, 0, 1, 0};
  const PathTestClass c = classify_path_test(nl, test, fig2_path(nl));
  EXPECT_TRUE(c == PathTestClass::kStrongNonRobust ||
              c == PathTestClass::kRobust);
}

TEST(Classify, NamesAreStable) {
  EXPECT_STREQ(path_test_class_name(PathTestClass::kRobust), "robust");
  EXPECT_STREQ(path_test_class_name(PathTestClass::kNotATest), "not a test");
}

}  // namespace
}  // namespace fbt
