// Cross-engine property: the §2.2 relationship between the transition path
// delay fault criterion and strong non-robust tests.
//
// If a test detects every transition fault along a path (the TPDF
// criterion), then every on-path line carries the matching transition, which
// is the "strong" part of strong non-robust -- so the classifier must report
// at least kStrongNonRobust whenever the off-path sensitization also holds,
// and conversely a test classified robust or strong non-robust always
// launches the matching transition on every on-path line.
#include <gtest/gtest.h>

#include "circuits/synth.hpp"
#include "fault/fault_sim.hpp"
#include "paths/classify.hpp"
#include "paths/path.hpp"
#include "sim/seqsim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

class ClassifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifyProperty, StrongTestsCarryEveryOnPathTransition) {
  SynthParams p;
  p.name = "clsprop" + std::to_string(GetParam());
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flops = 4;
  p.num_gates = 70;
  p.seed = GetParam();
  const Netlist nl = generate_synthetic(p);
  const PathEnumeration paths = enumerate_all_paths(nl, 400);

  Pcg32 rng(GetParam() * 31 + 7);
  std::size_t strong_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    BroadsideTest test;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      test.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      test.v1.push_back(rng.chance(1, 2));
      test.v2.push_back(rng.chance(1, 2));
    }
    const Path& path = paths.paths[rng.below(
        static_cast<std::uint32_t>(paths.paths.size()))];
    const PathDelayFault fp{path, rng.chance(1, 2) != 0};
    const PathTestClass cls = classify_path_test(nl, test, fp);
    if (cls != PathTestClass::kStrongNonRobust &&
        cls != PathTestClass::kRobust) {
      continue;
    }
    ++strong_seen;

    // Verify with two independent settles that every on-path line carries
    // the expected transition.
    SeqSim sim1(nl);
    sim1.load_state(test.scan_state);
    sim1.step(test.v1);
    SeqSim sim2(nl);
    sim2.load_state(second_state(nl, test));
    sim2.step(test.v2);
    for (const TransitionFault& tf : transition_faults_along(nl, fp)) {
      const std::uint8_t init = tf.rising ? 0 : 1;
      EXPECT_EQ(sim1.value(tf.line), init);
      EXPECT_NE(sim2.value(tf.line), init);
    }
  }
  // Random tests rarely sensitize whole paths; a handful is enough signal.
  (void)strong_seen;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifyProperty,
                         ::testing::Values(2u, 4u, 6u));

}  // namespace
}  // namespace fbt
