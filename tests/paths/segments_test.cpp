#include "paths/segments.hpp"

#include <gtest/gtest.h>

#include <set>

#include "atpg/tpdf_engine.hpp"
#include "circuits/s27.hpp"
#include "test_circuits.hpp"

namespace fbt {
namespace {

TEST(Segments, EnumeratesAllLengthOneSegments) {
  const Netlist nl = testing::make_fig2_circuit();
  const SegmentEnumeration e = enumerate_segments(nl, 1, 1000);
  ASSERT_TRUE(e.complete);
  // One segment per (driver, driven-gate) edge: a-c, b-c, c-e, d-e, e-g,
  // f-g = 6.
  EXPECT_EQ(e.segments.size(), 6u);
  for (const Path& s : e.segments) {
    EXPECT_EQ(s.length(), 1u);
  }
}

TEST(Segments, SegmentsAreWalksOfTheRequestedLength) {
  const Netlist nl = make_s27();
  const SegmentEnumeration e = enumerate_segments(nl, 2, 10000);
  ASSERT_TRUE(e.complete);
  EXPECT_GT(e.segments.size(), 10u);
  std::set<std::vector<NodeId>> unique;
  for (const Path& s : e.segments) {
    EXPECT_EQ(s.nodes.size(), 3u);
    for (std::size_t i = 1; i < s.nodes.size(); ++i) {
      const auto& fanins = nl.gate(s.nodes[i]).fanins;
      EXPECT_NE(std::find(fanins.begin(), fanins.end(), s.nodes[i - 1]),
                fanins.end());
    }
    unique.insert(s.nodes);
  }
  EXPECT_EQ(unique.size(), e.segments.size());
}

TEST(Segments, CapIsReported) {
  const Netlist nl = make_s27();
  const SegmentEnumeration e = enumerate_segments(nl, 1, 5);
  EXPECT_FALSE(e.complete);
  EXPECT_EQ(e.segments.size(), 5u);
}

// Segment faults run through the unchanged Chapter-2 engine ([24][25]'s
// model as a special case of the TPDF criterion).
TEST(Segments, EngineResolvesSegmentFaults) {
  const Netlist nl = make_s27();
  const SegmentEnumeration e = enumerate_segments(nl, 2, 10000);
  std::vector<PathDelayFault> faults;
  for (const Path& s : e.segments) {
    faults.push_back({s, true});
    faults.push_back({s, false});
  }
  TpdfEngine engine(nl, {});
  const TpdfRunReport report = engine.run(faults);
  EXPECT_EQ(report.detected + report.undetectable + report.aborted,
            faults.size());
  EXPECT_GT(report.detected, 0u);
  // Shorter targets are easier than whole paths: a larger detected share
  // than the 25/56 of full-path s27 is expected.
  EXPECT_GT(report.detected * 2, faults.size() * 25 / 56);
}

}  // namespace
}  // namespace fbt
