#include "paths/path.hpp"

#include <gtest/gtest.h>

#include <set>

#include "circuits/s27.hpp"
#include "circuits/synth.hpp"
#include "test_circuits.hpp"

namespace fbt {
namespace {

TEST(Paths, EnumeratesFig2Completely) {
  const Netlist nl = testing::make_fig2_circuit();
  const PathEnumeration e = enumerate_all_paths(nl, 100);
  ASSERT_TRUE(e.complete);
  // Sources a,b,d,f; paths: a-c-e-g, b-c-e-g, d-e-g, f-g = 4.
  EXPECT_EQ(e.paths.size(), 4u);
  std::set<std::size_t> lengths;
  for (const Path& p : e.paths) lengths.insert(p.length());
  EXPECT_EQ(lengths, (std::set<std::size_t>{1, 2, 3}));
}

TEST(Paths, CapRespectedAndReported) {
  const Netlist nl = make_s27();
  const PathEnumeration capped = enumerate_all_paths(nl, 3);
  EXPECT_FALSE(capped.complete);
  EXPECT_EQ(capped.paths.size(), 3u);
}

TEST(Paths, S27FullEnumerationIsStable) {
  const Netlist nl = make_s27();
  const PathEnumeration e = enumerate_all_paths(nl, 10000);
  ASSERT_TRUE(e.complete);
  EXPECT_GT(e.paths.size(), 10u);
  // Every path starts at a launch point and ends at a capture point, and
  // consecutive nodes are fanin/fanout related.
  for (const Path& p : e.paths) {
    const GateType src = nl.type(p.nodes.front());
    EXPECT_TRUE(src == GateType::kInput || src == GateType::kDff);
    EXPECT_TRUE(is_capture_point(nl, p.nodes.back()));
    for (std::size_t i = 1; i < p.nodes.size(); ++i) {
      const auto& fanins = nl.gate(p.nodes[i]).fanins;
      EXPECT_NE(std::find(fanins.begin(), fanins.end(), p.nodes[i - 1]),
                fanins.end());
    }
  }
  // No duplicates.
  std::set<std::vector<NodeId>> unique;
  for (const Path& p : e.paths) unique.insert(p.nodes);
  EXPECT_EQ(unique.size(), e.paths.size());
}

TEST(Paths, LongestFirstOrderMatchesFullEnumeration) {
  const Netlist nl = make_s27();
  const PathEnumeration all = enumerate_all_paths(nl, 10000);
  ASSERT_TRUE(all.complete);

  LongestPathEnumerator longest(nl);
  std::vector<Path> ordered;
  for (;;) {
    Path p = longest.next();
    if (p.nodes.empty()) break;
    ordered.push_back(std::move(p));
  }
  ASSERT_EQ(ordered.size(), all.paths.size());
  // Non-increasing lengths.
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    EXPECT_GE(ordered[i - 1].length(), ordered[i].length());
  }
  // Same path set.
  std::set<std::vector<NodeId>> a;
  std::set<std::vector<NodeId>> b;
  for (const Path& p : all.paths) a.insert(p.nodes);
  for (const Path& p : ordered) b.insert(p.nodes);
  EXPECT_EQ(a, b);
}

TEST(Paths, LongestFirstOnSyntheticCircuit) {
  SynthParams params;
  params.name = "paths_syn";
  params.num_inputs = 6;
  params.num_outputs = 4;
  params.num_flops = 5;
  params.num_gates = 80;
  params.seed = 19;
  const Netlist nl = generate_synthetic(params);
  LongestPathEnumerator longest(nl);
  std::size_t prev = SIZE_MAX;
  for (int i = 0; i < 200; ++i) {
    const Path p = longest.next();
    if (p.nodes.empty()) break;
    EXPECT_LE(p.length(), prev);
    prev = p.length();
  }
}

TEST(Paths, TransitionFaultPolarities) {
  const Netlist nl = make_s27();
  // Path G0 - G14(NOT) - G10(NOR): rising at G0 -> falling at G14 -> rising
  // at G10.
  PathDelayFault fp;
  fp.path.nodes = {nl.find("G0"), nl.find("G14"), nl.find("G10")};
  fp.rising = true;
  const auto trs = transition_faults_along(nl, fp);
  ASSERT_EQ(trs.size(), 3u);
  EXPECT_TRUE(trs[0].rising);
  EXPECT_FALSE(trs[1].rising);
  EXPECT_TRUE(trs[2].rising);
}

TEST(Paths, PathFaultNameFormats) {
  const Netlist nl = make_s27();
  PathDelayFault fp;
  fp.path.nodes = {nl.find("G0"), nl.find("G14")};
  fp.rising = false;
  EXPECT_EQ(path_fault_name(nl, fp), "G0-G14 (falling)");
}

}  // namespace
}  // namespace fbt
