#include "multiclock/multiclock_sim.hpp"

#include <gtest/gtest.h>

#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "circuits/s27.hpp"
#include "netlist/bench_io.hpp"

namespace fbt {
namespace {

TEST(ClockDomains, SplitByIndexAndDivider) {
  const Netlist nl = make_s27();  // 3 flops
  const ClockDomains domains = ClockDomains::split_by_index(nl, 34, 4);
  EXPECT_EQ(domains.num_slow(), 1u);  // 34% of 3 -> 1 flop (the last)
  EXPECT_FALSE(domains.is_slow(0));
  EXPECT_FALSE(domains.is_slow(1));
  EXPECT_TRUE(domains.is_slow(2));
  // Slow edge every 4 fast cycles, on cycles 3, 7, 11, ...
  EXPECT_FALSE(domains.slow_capture_at(0));
  EXPECT_FALSE(domains.slow_capture_at(2));
  EXPECT_TRUE(domains.slow_capture_at(3));
  EXPECT_TRUE(domains.slow_capture_at(7));
}

TEST(ClockDomains, ClassifiesFaultSpans) {
  // fastff -> fgate -> fast D; slowff -> sgate -> slow D; cross: fast -> slow.
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(o)
fastff = DFF(fd)
slowff = DFF(sd)
fgate = NOT(fastff)
fd = AND(fgate, a)
cross = NOT(fastff)
sgate = NOT(slowff)
sd = AND(sgate, cross)
o = BUF(fastff)
)",
                                 "spans");
  // Flop order: fastff (0), slowff (1); mark slowff slow.
  const ClockDomains domains(nl, {0, 1}, 2);
  EXPECT_EQ(domains.classify(nl.find("fgate")),
            ClockDomains::FaultSpan::kIntraFast);
  EXPECT_EQ(domains.classify(nl.find("sgate")),
            ClockDomains::FaultSpan::kIntraSlow);
  EXPECT_EQ(domains.classify(nl.find("cross")),
            ClockDomains::FaultSpan::kCrossing);
  // The input a feeds only the fast D: intra-fast.
  EXPECT_EQ(domains.classify(nl.find("a")),
            ClockDomains::FaultSpan::kIntraFast);
}

TEST(MultiClockSim, SlowDomainHoldsBetweenEdges) {
  const Netlist nl = make_s27();
  const ClockDomains domains = ClockDomains::split_by_index(nl, 34, 4);
  MultiClockSim mc(domains);
  mc.load_reset_state();
  SeqSim reference(nl);  // single-clock reference
  reference.load_reset_state();

  Tpg tpg(nl, {});
  tpg.reseed(0x5151);
  std::vector<std::uint8_t> slow_prev{0};
  for (int c = 0; c < 32; ++c) {
    const auto pi = tpg.next_vector();
    mc.step(pi);
    reference.step(pi);
    // Fast flops may differ from the reference after the first slow hold;
    // the slow flop must only change right after its own capture edges
    // (cycles 3, 7, ...).
    const std::uint8_t slow_now = mc.state()[2];
    if (c % 4 != 3) {
      EXPECT_EQ(slow_now, slow_prev[0]) << "cycle " << c;
    }
    slow_prev[0] = slow_now;
  }
}

TEST(MultiClockSim, DividerOfOneWouldEqualSingleClock) {
  // divider >= 2 is enforced; with all flops fast the machine equals the
  // single-clock simulator regardless of divider.
  const Netlist nl = make_s27();
  const ClockDomains domains(nl, {0, 0, 0}, 4);
  MultiClockSim mc(domains);
  mc.load_reset_state();
  SeqSim reference(nl);
  reference.load_reset_state();
  Tpg tpg(nl, {});
  tpg.reseed(0xbeef);
  for (int c = 0; c < 40; ++c) {
    const auto pi = tpg.next_vector();
    mc.step(pi);
    reference.step(pi);
    EXPECT_EQ(mc.state(), reference.state()) << "cycle " << c;
  }
}

TEST(MultiClockFaultSim, DetectsFaultsInEveryDomain) {
  const Netlist nl = load_benchmark("s298");
  const ClockDomains domains = ClockDomains::split_by_index(nl, 50, 4);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);

  // Functional stimulus from the TPG.
  Tpg tpg(nl, {});
  tpg.reseed(0x777);
  std::vector<std::vector<std::uint8_t>> vectors;
  for (int c = 0; c < 1200; ++c) vectors.push_back(tpg.next_vector());
  const std::vector<std::uint8_t> reset(nl.num_flops(), 0);
  const auto tests = extract_multicycle_tests(domains, reset, vectors,
                                              2 * domains.divider());
  ASSERT_GT(tests.size(), 50u);

  MultiClockFaultSim fsim(domains);
  std::vector<std::uint32_t> det(faults.size(), 0);
  fsim.grade(tests, faults, det);

  std::size_t by_span[3] = {0, 0, 0};
  std::size_t total_by_span[3] = {0, 0, 0};
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const auto span =
        static_cast<std::size_t>(domains.classify(faults.fault(f).line));
    ++total_by_span[span];
    if (det[f] >= 1) ++by_span[span];
  }
  // Fast and crossing faults must be detectable by multi-cycle tests; the
  // intra-slow class is exercised deterministically in the next test (this
  // circuit/split yields only one intra-slow line).
  EXPECT_GT(by_span[0], 0u);  // intra-fast
  EXPECT_GT(by_span[2], 0u);  // crossing
  (void)total_by_span;
}

// Deterministic intra-slow detection: slow1 toggles on every slow edge, the
// fault site sline = BUF(slow1) is launched and captured purely in the slow
// domain, and a slow-to-rise delay of one slow period flips the next slow2
// capture.
TEST(MultiClockFaultSim, IntraSlowFaultIsDetectedAtSlowSpeed) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(o)
fastff = DFF(fd)
fd = XOR(a, fastff)
o = BUF(fastff)
slow1 = DFF(sd1)
slow2 = DFF(sd2)
sd1 = NOT(slow1)
sline = BUF(slow1)
sd2 = NOT(sline)
)",
                                 "islow");
  const ClockDomains domains(nl, {0, 1, 1}, 4);
  const TransitionFault fault{nl.find("sline"), true};
  ASSERT_EQ(domains.classify(fault.line),
            ClockDomains::FaultSpan::kIntraSlow);

  MultiCycleTest test;
  test.start_state = {0, 0, 0};
  for (int c = 0; c < 12; ++c) {
    test.vectors.push_back({static_cast<std::uint8_t>(c % 2)});
  }
  MultiClockFaultSim fsim(domains);
  EXPECT_TRUE(fsim.detects(test, fault));
  // The falling fault needs slow1 to fall, which happens one slow period
  // later -- still inside the 12-cycle window (edges at cycles 3, 7, 11).
  EXPECT_TRUE(fsim.detects(test, {nl.find("sline"), false}));
}

TEST(MultiClockFaultSim, WindowsAlignWithTheSlowClockPhase) {
  const Netlist nl = make_s27();
  const ClockDomains domains = ClockDomains::split_by_index(nl, 34, 4);
  Tpg tpg(nl, {});
  tpg.reseed(3);
  std::vector<std::vector<std::uint8_t>> vectors;
  for (int c = 0; c < 64; ++c) vectors.push_back(tpg.next_vector());
  const std::vector<std::uint8_t> reset(nl.num_flops(), 0);
  const auto tests = extract_multicycle_tests(domains, reset, vectors, 8);
  // Windows start every `divider` cycles, so every start index is a multiple
  // of 4 and the in-window slow edges land on local cycles 3 and 7.
  EXPECT_EQ(tests.size(), (64 - 8) / 4 + 1);
  for (const MultiCycleTest& t : tests) {
    EXPECT_EQ(t.vectors.size(), 8u);
    EXPECT_EQ(t.start_state.size(), nl.num_flops());
  }
}

}  // namespace
}  // namespace fbt
