#include "circuits/registry.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "circuits/synth.hpp"
#include "netlist/bench_io.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

TEST(Synth, IsDeterministic) {
  SynthParams p;
  p.name = "det";
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flops = 9;
  p.num_gates = 120;
  p.seed = 42;
  const Netlist a = generate_synthetic(p);
  const Netlist b = generate_synthetic(p);
  EXPECT_EQ(write_bench(a), write_bench(b));
}

TEST(Synth, DifferentSeedsDiffer) {
  SynthParams p;
  p.name = "det";
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flops = 9;
  p.num_gates = 120;
  p.seed = 42;
  const Netlist a = generate_synthetic(p);
  p.seed = 43;
  const Netlist b = generate_synthetic(p);
  EXPECT_NE(write_bench(a), write_bench(b));
}

TEST(Synth, MatchesRequestedInterface) {
  SynthParams p;
  p.name = "iface";
  p.num_inputs = 11;
  p.num_outputs = 7;
  p.num_flops = 23;
  p.num_gates = 300;
  p.seed = 5;
  const Netlist nl = generate_synthetic(p);
  EXPECT_EQ(nl.num_inputs(), 11u);
  EXPECT_EQ(nl.num_outputs(), 7u);
  EXPECT_EQ(nl.num_flops(), 23u);
  EXPECT_EQ(nl.num_gates(), 300u);
}

TEST(Synth, EverySourceDrivesLogic) {
  SynthParams p;
  p.name = "drive";
  p.num_inputs = 14;
  p.num_outputs = 6;
  p.num_flops = 18;
  p.num_gates = 250;
  p.seed = 77;
  const Netlist nl = generate_synthetic(p);
  for (const NodeId pi : nl.inputs()) {
    EXPECT_FALSE(nl.fanouts(pi).empty()) << "dead input " << pi;
  }
  for (const NodeId ff : nl.flops()) {
    EXPECT_FALSE(nl.fanouts(ff).empty()) << "dead state variable " << ff;
  }
}

TEST(Synth, DeadLogicIsRare) {
  SynthParams p;
  p.name = "dead";
  p.num_inputs = 10;
  p.num_outputs = 10;
  p.num_flops = 30;
  p.num_gates = 500;
  p.seed = 3;
  const Netlist nl = generate_synthetic(p);
  std::size_t dead = 0;
  for (const NodeId id : nl.eval_order()) {
    if (nl.fanouts(id).empty() && !nl.is_output(id)) ++dead;
  }
  EXPECT_LE(dead, nl.num_gates() / 20);  // < 5% fanout-free non-outputs
}

TEST(Buffers, FeedsInputsStraightThrough) {
  const Netlist nl = make_buffers_block(3);
  EXPECT_EQ(nl.num_inputs(), 3u);
  EXPECT_EQ(nl.num_outputs(), 3u);
  EXPECT_EQ(nl.num_flops(), 0u);
}

TEST(Registry, KnowsS27AsGenuine) {
  const BenchmarkSpec& spec = benchmark_spec("s27");
  EXPECT_FALSE(spec.synthetic);
  const Netlist nl = load_benchmark("s27");
  EXPECT_EQ(write_bench(nl), write_bench(make_s27()));
}

TEST(Registry, Chapter4InterfaceCountsMatchTable42) {
  // Dissertation Table 4.2: (name, N_PO, N_PI, N_SV).
  const struct {
    const char* name;
    std::size_t npo, npi, nsv;
  } kRows[] = {
      {"s35932e", 320, 35, 1728}, {"s38584e", 278, 12, 1164},
      {"b14", 54, 32, 215},       {"b20", 22, 32, 430},
      {"spi", 45, 45, 229},       {"wb_dma", 215, 215, 523},
      {"systemcaes", 129, 258, 670},
      {"systemcdes", 65, 130, 190},
      {"des_area", 64, 239, 128},
      {"aes_core", 129, 258, 530},
      {"wb_conmax", 1416, 1128, 770},
  };
  for (const auto& row : kRows) {
    const BenchmarkSpec& spec = benchmark_spec(row.name);
    EXPECT_EQ(spec.num_outputs, row.npo) << row.name;
    EXPECT_EQ(spec.num_inputs, row.npi) << row.name;
    EXPECT_EQ(spec.num_flops, row.nsv) << row.name;
  }
}

TEST(Registry, LoadsEveryEntry) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    if (spec.num_gates > 1500) continue;  // keep the unit test fast
    const Netlist nl = load_benchmark(spec.name);
    EXPECT_EQ(nl.num_inputs(), spec.num_inputs) << spec.name;
    EXPECT_EQ(nl.num_outputs(), spec.num_outputs) << spec.name;
    EXPECT_EQ(nl.num_flops(), spec.num_flops) << spec.name;
  }
}

TEST(Registry, ThrowsOnUnknownName) {
  EXPECT_THROW(benchmark_spec("s99999"), Error);
  EXPECT_THROW(load_benchmark("nope"), Error);
}

}  // namespace
}  // namespace fbt
