// Serial vs PPSFP packed fault-grading throughput on one registry circuit.
//
// Grades the same random broadside test set against the full collapsed fault
// list with the serial engine (one fault at a time, 64 tests per word) and
// with the PPSFP engine at pack widths 8 and 64 (up to 64 faults per word
// against the shared good-machine trace), single-threaded and composed with
// thread sharding -- verifying bit-identical detect counts and first-detect
// provenance at every configuration. The realistic grade mode (fault
// dropping at --detect-limit, default 1) is the gated measurement: the gauge
// fault.pack_speedup_64 (serial ms / pack-64 ms, both single-threaded) feeds
// the fbt_report diff --min-pack-speedup CI gate. A no-drop pass is reported
// alongside as the raw-propagation bound. Writes BENCH_ppsfp.json with the
// timings, speedups, and pack-efficiency gauges (groups simulated, lanes
// wasted, diff words propagated).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "fault/parallel_fault_sim.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "serve/shutdown.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

fbt::TestSet random_tests(const fbt::Netlist& nl, std::size_t count,
                          std::uint64_t seed) {
  fbt::Pcg32 rng(seed);
  fbt::TestSet tests;
  for (std::size_t i = 0; i < count; ++i) {
    fbt::BroadsideTest t;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      t.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      t.v1.push_back(rng.chance(1, 2));
      t.v2.push_back(rng.chance(1, 2));
    }
    tests.push_back(std::move(t));
  }
  return tests;
}

struct GradeRun {
  std::vector<std::uint32_t> counts;
  fbt::GradeProvenance provenance;
};

// One timed repeat: the pure grade, no provenance -- provenance collection
// is optional telemetry, off on the flow's hot path.
double timed_grade(fbt::ParallelBroadsideFaultSim& sim,
                   const fbt::TestSet& tests,
                   const fbt::TransitionFaultList& faults,
                   std::uint32_t detect_limit) {
  std::vector<std::uint32_t> counts(faults.size(), 0);
  fbt::Timer t;
  sim.grade(tests, faults, counts, detect_limit);
  return t.ms();
}

// Untimed pass collecting the counts and provenance the identity check
// compares.
GradeRun identity_grade(fbt::ParallelBroadsideFaultSim& sim,
                        const fbt::TestSet& tests,
                        const fbt::TransitionFaultList& faults,
                        std::uint32_t detect_limit) {
  GradeRun out;
  out.counts.assign(faults.size(), 0);
  sim.grade(tests, faults, out.counts, detect_limit, &out.provenance);
  return out;
}

bool same_results(const GradeRun& a, const GradeRun& b) {
  return a.counts == b.counts &&
         a.provenance.first_hits == b.provenance.first_hits &&
         a.provenance.blocks == b.provenance.blocks;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  // des_perf is the largest registry circuit (4800 gates, 1200 flops) --
  // the same throughput target bench_parallel_grade measures.
  const std::string target_name = cli.get("target", "des_perf");
  const auto num_tests = static_cast<std::size_t>(cli.get_int("tests", 256));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 5));
  const auto detect_limit =
      static_cast<std::uint32_t>(cli.get_int("detect-limit", 1));
  constexpr std::uint32_t kNoDrop = 1u << 30;  // keep every fault active

  // On SIGINT/SIGTERM: flush the journal + write the (partial) bench
  // report before exiting with the conventional 128+signum status.
  fbt::serve::GracefulShutdown shutdown([](int sig) {
    std::fprintf(stderr, "[bench_ppsfp] caught signal %d, flushing report\n",
                 sig);
    fbt::obs::write_bench_report("ppsfp", {{"interrupted", "yes"}});
    std::_Exit(fbt::serve::GracefulShutdown::exit_status(sig));
  });

  fbt::Timer total;
  const fbt::Netlist nl = fbt::load_benchmark(target_name);
  const fbt::TransitionFaultList faults =
      fbt::TransitionFaultList::collapsed(nl);
  const fbt::TestSet tests = random_tests(nl, num_tests, 0xbadcafeULL);
  const std::size_t hw = fbt::jobs::JobSystem::resolve_threads(0);

  std::printf(
      "[bench_ppsfp] target=%s tests=%zu faults=%zu detect_limit=%u "
      "hw_threads=%zu\n",
      target_name.c_str(), tests.size(), faults.size(), detect_limit, hw);

  fbt::Table table("PPSFP packed fault grading (" + target_name + ", " +
                   std::to_string(tests.size()) + " tests, " +
                   std::to_string(faults.size()) + " faults, limit " +
                   std::to_string(detect_limit) + ")");
  table.set_header({"engine", "grade ms", "speedup", "identical"});

  bool all_identical = true;
  // Serial reference (pack width 1, one thread) plus the packed configs.
  fbt::ParallelBroadsideFaultSim serial(nl, 1, nullptr, 1);
  struct Config {
    std::uint32_t width;
    std::size_t threads;
  };
  std::vector<Config> configs = {{8, 1}, {64, 1}, {64, 2}};
  if (hw != 2 && hw != 1) configs.push_back({64, hw});
  std::vector<std::unique_ptr<fbt::ParallelBroadsideFaultSim>> sims;
  for (const Config& c : configs) {
    sims.push_back(std::make_unique<fbt::ParallelBroadsideFaultSim>(
        nl, c.threads, nullptr, c.width));
  }

  // Timed repeats run interleaved across the engines: a noisy phase of a
  // shared host hits every configuration instead of whichever one happened
  // to be running, so the best-of ratios stay comparable.
  double serial_best = 1e300;
  std::vector<double> config_best(configs.size(), 1e300);
  for (std::size_t r = 0; r < repeats; ++r) {
    serial_best = std::min(serial_best,
                           timed_grade(serial, tests, faults, detect_limit));
    for (std::size_t i = 0; i < configs.size(); ++i) {
      config_best[i] = std::min(
          config_best[i], timed_grade(*sims[i], tests, faults, detect_limit));
    }
  }

  FBT_OBS_GAUGE_SET("fault.ppsfp_bench_serial_ms", serial_best);
  table.add_row({"serial", fbt::Table::num(serial_best, 2), "1.00", "ref"});

  const GradeRun serial_run =
      identity_grade(serial, tests, faults, detect_limit);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
#if FBT_OBS_ENABLED
    const std::uint64_t groups_before =
        fbt::obs::registry().counter("fault.pack_groups_simulated").value();
    const std::uint64_t wasted_before =
        fbt::obs::registry().counter("fault.pack_lanes_wasted").value();
    const std::uint64_t words_before =
        fbt::obs::registry()
            .counter("fault.pack_diff_words_propagated")
            .value();
#endif
    const GradeRun run = identity_grade(*sims[i], tests, faults, detect_limit);
    const bool identical = same_results(run, serial_run);
    all_identical = all_identical && identical;
    const double speedup =
        config_best[i] > 0 ? serial_best / config_best[i] : 0.0;
    const std::string label =
        "w" + std::to_string(c.width) +
        (c.threads == 1 ? "" : "x" + std::to_string(c.threads) + "t");
    table.add_row({label, fbt::Table::num(config_best[i], 2),
                   fbt::Table::num(speedup, 2), identical ? "yes" : "NO"});
    // Dynamic metric names: bypass the macro (it caches one name per call
    // site) and talk to the registry directly.
    fbt::obs::registry().gauge("fault.pack_bench_" + label + "_ms")
        .set(config_best[i]);
    fbt::obs::registry().gauge("fault.pack_bench_speedup_" + label)
        .set(speedup);
    if (c.width == 64 && c.threads == 1) {
      // The gated quantity: single-threaded pack-64 vs serial.
      FBT_OBS_GAUGE_SET("fault.pack_speedup_64", speedup);
#if FBT_OBS_ENABLED
      // Pack-efficiency gauges over one grade call (the identity pass).
      const auto groups =
          fbt::obs::registry().counter("fault.pack_groups_simulated").value() -
          groups_before;
      const auto wasted =
          fbt::obs::registry().counter("fault.pack_lanes_wasted").value() -
          wasted_before;
      const auto words = fbt::obs::registry()
                             .counter("fault.pack_diff_words_propagated")
                             .value() -
                         words_before;
      FBT_OBS_GAUGE_SET("fault.pack_bench_groups_simulated",
                        static_cast<double>(groups));
      FBT_OBS_GAUGE_SET("fault.pack_bench_lanes_wasted",
                        static_cast<double>(wasted));
      FBT_OBS_GAUGE_SET("fault.pack_bench_diff_words",
                        static_cast<double>(words));
#endif
    }
  }

  // No-drop pass: every fault stays active through every block, the raw
  // propagation-throughput bound (bench_parallel_grade's regime). Same
  // interleaving.
  fbt::ParallelBroadsideFaultSim serial_nd(nl, 1, nullptr, 1);
  fbt::ParallelBroadsideFaultSim packed_nd(nl, 1, nullptr, 64);
  double serial_nd_best = 1e300;
  double packed_nd_best = 1e300;
  for (std::size_t r = 0; r < repeats; ++r) {
    serial_nd_best =
        std::min(serial_nd_best, timed_grade(serial_nd, tests, faults, kNoDrop));
    packed_nd_best =
        std::min(packed_nd_best, timed_grade(packed_nd, tests, faults, kNoDrop));
  }
  const GradeRun serial_nodrop =
      identity_grade(serial_nd, tests, faults, kNoDrop);
  const GradeRun packed_nodrop =
      identity_grade(packed_nd, tests, faults, kNoDrop);
  const bool nodrop_identical = same_results(packed_nodrop, serial_nodrop);
  all_identical = all_identical && nodrop_identical;
  const double nodrop_speedup =
      packed_nd_best > 0 ? serial_nd_best / packed_nd_best : 0.0;
  table.add_row(
      {"nodrop serial", fbt::Table::num(serial_nd_best, 2), "1.00", "ref"});
  table.add_row({"nodrop w64", fbt::Table::num(packed_nd_best, 2),
                 fbt::Table::num(nodrop_speedup, 2),
                 nodrop_identical ? "yes" : "NO"});
  FBT_OBS_GAUGE_SET("fault.pack_nodrop_speedup_64", nodrop_speedup);

  table.print();
  std::printf("[bench_ppsfp] identical=%s done in %s\n",
              all_identical ? "yes" : "NO", total.pretty().c_str());

  fbt::obs::write_bench_report(
      "ppsfp", {{"target", target_name},
                {"tests", std::to_string(tests.size())},
                {"faults", std::to_string(faults.size())},
                {"repeats", std::to_string(repeats)},
                {"detect_limit", std::to_string(detect_limit)},
                {"hw_threads", std::to_string(hw)},
                {"identical", all_identical ? "yes" : "no"}});
  return all_identical ? 0 : 1;
}
