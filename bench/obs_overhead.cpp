// Measures the walltime cost of the observability layer on the flow_smoke
// workload (s298 under the buffers driver, the CI baseline configuration),
// run as a task graph on a 4-worker pool so the tracing hot paths --
// TraceContext capture/re-entry, flow arrows, scheduler clocks -- are all
// exercised. CI builds this bench twice (FBT_OBS=ON and OFF), runs each,
// and gates the ON/OFF delta of the obs.flow_run_ms gauge with
// `fbt_report diff --max-obs-overhead-pct 2`.
//
// Methodology: one untimed warmup run, then --repeats timed runs (default
// 7); the gated figure is the MINIMUM walltime (robust against scheduler
// noise on shared CI runners), the mean is reported alongside. The phase
// trace is cleared between repeats so the trace buffer cannot grow across
// iterations and distort later runs.
#include <algorithm>
#include <cstdio>
#include <string>

#include "flow/bist_flow.hpp"
#include "jobs/job_system.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#ifndef FBT_OBS_ENABLED
#define FBT_OBS_ENABLED 1
#endif

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const int repeats = static_cast<int>(cli.get_int("repeats", 7));
  const int threads = static_cast<int>(cli.get_int("threads", 4));

  fbt::BistExperimentConfig cfg;
  cfg.target_name = "s298";
  cfg.driver_name = "buffers";
  cfg.calibration.num_sequences = 4;
  cfg.calibration.sequence_length = 400;
  cfg.generation.segment_length = 200;
  cfg.generation.max_segment_failures = 2;
  cfg.generation.max_sequence_failures = 2;
  cfg.generation.rng_seed = 19;

  fbt::jobs::JobSystem jobs(static_cast<std::size_t>(threads));

  // Warmup: pays first-touch costs (benchmark registry, allocator warm-up)
  // outside the timed window.
  (void)fbt::run_bist_experiment(cfg, jobs, fbt::ExperimentArtifacts{});
  fbt::obs::PhaseTrace::instance().clear();

  double min_ms = 0.0;
  double sum_ms = 0.0;
  for (int i = 0; i < repeats; ++i) {
    fbt::Timer timer;
    const fbt::BistExperimentResult r =
        fbt::run_bist_experiment(cfg, jobs, fbt::ExperimentArtifacts{});
    const double ms = timer.ms();
    std::printf("obs_overhead: repeat %d/%d %.3f ms (coverage %.4f%%)\n",
                i + 1, repeats, ms, r.fault_coverage_percent);
    min_ms = i == 0 ? ms : std::min(min_ms, ms);
    sum_ms += ms;
    fbt::obs::PhaseTrace::instance().clear();
  }
  const double mean_ms = repeats > 0 ? sum_ms / repeats : 0.0;

  // Gauge classes work in both builds (only the FBT_OBS_* macros compile
  // out), so the OFF-build report still carries the baseline figure.
  fbt::obs::registry().gauge("obs.flow_run_ms").set(min_ms);
  fbt::obs::registry().gauge("obs.flow_run_ms_mean").set(mean_ms);
  fbt::obs::registry().gauge("obs.enabled").set(FBT_OBS_ENABLED);

  std::printf("obs_overhead: obs=%d min %.3f ms mean %.3f ms over %d repeats\n",
              FBT_OBS_ENABLED, min_ms, mean_ms, repeats);
  fbt::obs::write_bench_report(
      "obs_overhead",
      {{"workload", "flow_smoke"},
       {"repeats", std::to_string(repeats)},
       {"threads", std::to_string(threads)},
       {"obs_enabled", FBT_OBS_ENABLED != 0 ? "1" : "0"}});
  return 0;
}
