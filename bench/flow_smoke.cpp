// Deterministic end-to-end smoke bench: one small unconstrained experiment
// (s298 under the buffers driver, the flow_test configuration) whose
// BENCH_flow_smoke.json is the CI regression baseline. Unconstrained means
// bounded == false, so no floating-point SWA comparison influences segment
// accept/reject -- coverage and test counts are integer-deterministic across
// platforms and safe to gate with `fbt_report diff` against the checked-in
// baseline in bench/baselines/.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "flow/bist_flow.hpp"
#include "obs/run_report.hpp"
#include "serve/shutdown.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string target = cli.get("target", "s298");
  const std::string driver = cli.get("driver", "buffers");

  // On SIGINT/SIGTERM: flush the journal + write the (partial) bench
  // report before exiting with the conventional 128+signum status.
  fbt::serve::GracefulShutdown shutdown([](int sig) {
    std::fprintf(stderr, "[bench_flow_smoke] caught signal %d, flushing report\n",
                 sig);
    fbt::obs::write_bench_report("flow_smoke", {{"interrupted", "yes"}});
    std::_Exit(fbt::serve::GracefulShutdown::exit_status(sig));
  });

  fbt::BistExperimentConfig cfg;
  cfg.target_name = target;
  cfg.driver_name = driver;
  cfg.calibration.num_sequences = 4;
  cfg.calibration.sequence_length = 400;
  cfg.generation.segment_length = 200;
  cfg.generation.max_segment_failures = 2;
  cfg.generation.max_sequence_failures = 2;
  cfg.generation.rng_seed = 19;

  fbt::Timer total;
  const fbt::BistExperimentResult r = fbt::run_bist_experiment(cfg);
  std::printf(
      "flow_smoke: %s/%s coverage %.4f%% tests %zu seeds %zu (%.1f ms)\n",
      target.c_str(), driver.c_str(), r.fault_coverage_percent,
      r.run.num_tests, r.run.num_seeds, total.ms());

  fbt::obs::write_bench_report(
      "flow_smoke", {{"target", target}, {"driver", driver}});
  return 0;
}
