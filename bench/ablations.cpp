// Ablation studies for the design choices DESIGN.md calls out.
//
//  A. Scan test types (§1.3): transition fault coverage of equal-sized
//     random test sets under enhanced-scan / skewed-load / broadside /
//     *functional* broadside application. Reproduces the chapter's narrative:
//     enhanced scan >= skewed-load ~ broadside > functional broadside, with
//     the gap being exactly the faults that need unreachable states.
//  B. Switching bound (§4.4 vs §5.1): SWA-bounded vs signal-transition-
//     pattern-bounded generation -- coverage, tests, and how many generated
//     cycles the stricter bound rejects.
//  C. n-detect (§4.1): built-in generation naturally accumulates n-detect
//     coverage as more tests are applied.
//  D. Seed-set reduction (§4.3 / [89]): sequences kept before/after the
//     forward-looking reduction at equal coverage.
#include <cstdio>
#include <string>
#include <vector>

#include "bist/embedded.hpp"
#include "bist/functional_bist.hpp"
#include "bist/tpg_variants.hpp"
#include "fault/compaction.hpp"
#include "fault/fault_sim.hpp"
#include "circuits/registry.hpp"
#include "fault/scan_test_types.hpp"
#include "flow/bist_flow.hpp"
#include "netlist/scan.hpp"
#include "sim/seqsim.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

std::size_t coverage(const fbt::Netlist& nl, const fbt::TestSet& tests,
                     const fbt::TransitionFaultList& faults,
                     std::uint32_t n_detect = 1) {
  fbt::BroadsideFaultSim sim(nl);
  std::vector<std::uint32_t> det(faults.size(), 0);
  sim.grade(tests, faults, det, n_detect);
  std::size_t covered = 0;
  for (const std::uint32_t c : det) covered += (c >= n_detect);
  return covered;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string target_name = cli.get("target", "s298");
  const auto count = static_cast<std::size_t>(cli.get_int("tests", 2000));
  fbt::Timer total;

  const fbt::Netlist nl = fbt::load_benchmark(target_name);
  const fbt::ScanChains scan(nl, {});
  const fbt::TransitionFaultList faults =
      fbt::TransitionFaultList::collapsed(nl);
  fbt::Pcg32 rng(2718);

  // ---- A: scan test types -------------------------------------------------
  {
    fbt::TestSet broadside;
    fbt::TestSet skewed;
    fbt::TestSet enhanced;
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<std::uint8_t> s1;
      std::vector<std::uint8_t> s2;
      std::vector<std::uint8_t> v1;
      std::vector<std::uint8_t> v2;
      std::vector<std::uint8_t> scan_in;
      for (std::size_t k = 0; k < nl.num_flops(); ++k) {
        s1.push_back(rng.chance(1, 2));
        s2.push_back(rng.chance(1, 2));
      }
      for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
        v1.push_back(rng.chance(1, 2));
        v2.push_back(rng.chance(1, 2));
      }
      for (std::size_t k = 0; k < scan.num_chains(); ++k) {
        scan_in.push_back(rng.chance(1, 2));
      }
      broadside.push_back(fbt::BroadsideTest{s1, v1, v2, {}});
      skewed.push_back(
          fbt::make_skewed_load_test(nl, scan, s1, scan_in, v1, v2));
      enhanced.push_back(fbt::make_enhanced_scan_test(s1, s2, v1, v2));
    }
    // Functional broadside tests of the same count via on-chip generation.
    fbt::FunctionalBistConfig cfg;
    cfg.segment_length = 512;
    cfg.bounded = false;
    fbt::FunctionalBistGenerator gen(nl, cfg);
    std::vector<std::uint32_t> det(faults.size(), 0);
    fbt::FunctionalBistResult run = gen.run(faults, det);
    if (run.tests.size() > count) run.tests.resize(count);

    fbt::Table table("Ablation A: scan test types on " + target_name + " (" +
                     std::to_string(count) + " random tests each)");
    table.set_header({"Test type", "Detected", "FC%"});
    const struct {
      const char* name;
      const fbt::TestSet* tests;
    } rows[] = {{"enhanced scan", &enhanced},
                {"skewed load", &skewed},
                {"broadside (unrestricted)", &broadside},
                {"functional broadside", &run.tests}};
    for (const auto& row : rows) {
      const std::size_t c = coverage(nl, *row.tests, faults);
      table.add_row({row.name, std::to_string(c),
                     fbt::Table::num(100.0 * c / faults.size(), 2)});
    }
    table.print();
    std::printf("\n");
  }

  // ---- B: SWA bound vs signal-transition-pattern bound --------------------
  {
    const fbt::Netlist driver = fbt::load_benchmark("s386");
    fbt::SwaCalibrationConfig cal;
    cal.num_sequences = 10;
    cal.sequence_length = 4000;
    const fbt::FunctionalProfile profile =
        fbt::measure_functional_profile(nl, driver, cal, 16384);

    fbt::Table table("Ablation B: switching bound (target " + target_name +
                     ", driver s386; SWA_func = " +
                     fbt::Table::num(profile.peak_percent, 2) + "%)");
    table.set_header({"Bound", "Sequences", "Seeds", "Tests", "Peak SWA%",
                      "FC%"});
    for (const bool use_pst : {false, true}) {
      fbt::FunctionalBistConfig cfg;
      cfg.segment_length = 512;
      cfg.bounded = true;
      cfg.swa_bound_percent = profile.peak_percent;
      if (use_pst) cfg.pattern_store = &profile.patterns;
      fbt::FunctionalBistGenerator gen(nl, cfg);
      std::vector<std::uint32_t> det(faults.size(), 0);
      const fbt::FunctionalBistResult run = gen.run(faults, det);
      std::size_t covered = 0;
      for (const std::uint32_t c : det) covered += (c >= 1);
      table.add_row({use_pst ? "PST subset (sec. 5.1)" : "SWA (sec. 4.4)",
                     std::to_string(run.sequences.size()),
                     std::to_string(run.num_seeds),
                     std::to_string(run.num_tests),
                     fbt::Table::num(run.peak_swa, 2),
                     fbt::Table::num(100.0 * covered / faults.size(), 2)});
    }
    table.print();
    std::printf("(functional patterns stored: %zu)\n\n",
                profile.patterns.size());
  }

  // ---- C: n-detect accumulation -------------------------------------------
  {
    fbt::FunctionalBistConfig cfg;
    cfg.segment_length = 512;
    cfg.bounded = false;
    cfg.rng_seed = 5;
    fbt::FunctionalBistGenerator gen(nl, cfg);
    std::vector<std::uint32_t> det(faults.size(), 0);
    const fbt::FunctionalBistResult run = gen.run(faults, det);
    fbt::Table table("Ablation C: n-detect coverage of the generated set (" +
                     std::to_string(run.num_tests) + " tests)");
    table.set_header({"n", "faults detected n+ times", "FC%"});
    for (const std::uint32_t n : {1u, 2u, 5u, 10u}) {
      const std::size_t c = coverage(nl, run.tests, faults, n);
      table.add_row({std::to_string(n), std::to_string(c),
                     fbt::Table::num(100.0 * c / faults.size(), 2)});
    }
    table.print();
    std::printf("\n");
  }

  // ---- D: sequence (seed-set) reduction ------------------------------------
  {
    fbt::BistExperimentConfig cfg;
    cfg.target_name = target_name;
    cfg.driver_name = "s386";
    cfg.calibration.num_sequences = 4;
    cfg.calibration.sequence_length = 800;
    cfg.generation.segment_length = 512;
    cfg.generation.rng_seed = 77;
    const fbt::BistExperimentResult r = fbt::run_bist_experiment(cfg);
    fbt::Table table("Ablation D: forward-looking sequence reduction");
    table.set_header({"", "Sequences", "Seeds", "Tests"});
    table.add_row({"constructed",
                   std::to_string(r.sequences_before_reduction),
                   std::to_string(r.seeds_before_reduction), "-"});
    table.add_row({"kept", std::to_string(r.run.sequences.size()),
                   std::to_string(r.run.num_seeds),
                   std::to_string(r.run.num_tests)});
    table.print();
    std::printf("coverage unchanged at %.2f%%\n", r.fault_coverage_percent);
  }

  // ---- E: TPG architectures (sec. 4.2, refs [82]-[87]) ---------------------
  {
    fbt::Table table("Ablation E: TPG architectures (functional application, "
                     "equal cycles)");
    table.set_header({"TPG", "Tests", "Detected", "FC%"});
    const std::size_t cycles = 4096;
    const std::size_t seeds = 4;

    fbt::CubeTpgSource cube(nl, {});
    fbt::WeightedTpg weighted(nl, 32, 4, 2024);
    fbt::BitFlippingTpg flipping(nl, 32, 2024);
    const struct {
      const char* name;
      fbt::PatternSource* source;
    } rows[] = {{"cube-biased (sec. 4.3)", &cube},
                {"weighted, 4 sets [84-87]", &weighted},
                {"bit-flipping [83]", &flipping}};

    for (const auto& row : rows) {
      fbt::TestSet tests;
      fbt::SeqSim sim(nl);
      fbt::Pcg32 seed_rng(31337);
      for (std::size_t s = 0; s < seeds; ++s) {
        row.source->reseed(seed_rng.next() | 1u);
        sim.load_reset_state();
        std::vector<std::uint8_t> launch_state;
        std::vector<std::uint8_t> pending_v1;
        for (std::size_t c = 0; c < cycles / seeds; ++c) {
          auto pi = row.source->next_vector();
          if (c % 2 == 0) {
            launch_state = sim.state();
            pending_v1 = pi;
          }
          sim.step(pi);
          if (c % 2 == 1) {
            tests.push_back(
                fbt::BroadsideTest{launch_state, pending_v1, pi, {}});
          }
        }
      }
      const std::size_t c = coverage(nl, tests, faults);
      table.add_row({row.name, std::to_string(tests.size()),
                     std::to_string(c),
                     fbt::Table::num(100.0 * c / faults.size(), 2)});
    }
    table.print();
    std::printf("\n");
  }

  std::printf("[bench_ablations] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "ablations",
      {{"target", target_name},
       {"tests", std::to_string(count)}});
  return 0;
}
