// Reproduces dissertation Table 3.1: the path-selection walk-through.
// The N most critical potentially detectable path delay faults of one
// circuit are selected by traditional STA, each fault's delay is then
// recalculated under its own input necessary assignments, and faults that
// become at-least-as-critical under those INAs join the set ("new paths").
#include <cstdio>
#include <string>

#include "circuits/registry.hpp"
#include "sta/path_selection.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string circuit = cli.get("circuit", "s13207");
  const auto n = static_cast<std::size_t>(cli.get_int("N", 16));
  const auto pool = static_cast<std::size_t>(cli.get_int("M", 1500));

  fbt::Timer total;
  const fbt::Netlist nl = fbt::load_benchmark(circuit);
  fbt::PathSelectionConfig cfg;
  cfg.num_target = n;
  cfg.initial_pool = pool;
  cfg.expansion_cap = 24;
  cfg.max_processed = 4 * n;
  const fbt::PathSelectionResult result =
      fbt::select_critical_paths(nl, fbt::DelayLibrary::standard_018um(), cfg);

  fbt::Table table("Table 3.1: Path selection in " + circuit + " (N = " +
                   std::to_string(n) + ")");
  table.set_header({"Path delay fault", "original (ns)", "final (ns)",
                    "newly identified"});
  std::size_t index = 1;
  for (const fbt::SelectedPathFault& sel : result.target) {
    table.add_row({"fp" + std::to_string(index++),
                   fbt::Table::num(sel.original_delay, 3),
                   fbt::Table::num(sel.final_delay, 3),
                   sel.newly_added ? "yes" : "-"});
  }
  table.print();
  std::printf(
      "initial Target_PDF: %zu faults; after recalculation/expansion: %zu; "
      "undetectable dropped: %zu\n",
      result.original_size, result.final_size, result.undetectable_dropped);
  std::printf("[bench_table3_1] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "table3_1",
      {{"circuit", circuit},
       {"N", std::to_string(n)},
       {"M", std::to_string(pool)}});
  return 0;
}
