// Reproduces dissertation Table 4.1: an example of primary input subsequence
// selection. One TPG-generated primary input sequence is applied to a
// constrained target; the per-cycle switching activity is traced, cycles
// whose SWA exceeds SWA_func are marked in the rightmost column, and the
// usable subsequences P_{k,w} between violations are listed -- exactly the
// decomposition the multi-segment construction (Fig. 4.9) automates.
#include <cstdio>
#include <string>
#include <vector>

#include "bist/embedded.hpp"
#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "sim/seqsim.hpp"
#include "obs/instrument.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string target_name = cli.get("target", "spi");
  const std::string driver_name = cli.get("driver", "wb_dma");
  const auto length = static_cast<std::size_t>(cli.get_int("length", 48));

  fbt::Timer total;
  const fbt::Netlist target = fbt::load_benchmark(target_name);
  const fbt::Netlist driver = fbt::load_benchmark(driver_name);

  fbt::SwaCalibrationConfig cal_cfg;
  cal_cfg.num_sequences = 4;
  cal_cfg.sequence_length = 800;
  const double swa_func =
      fbt::measure_swa_func(target, driver, cal_cfg).peak_percent;
  // Trace with a deliberately tighter bound so the example shows violations.
  const double bound = 0.82 * swa_func;

  fbt::Tpg tpg(target, {});
  tpg.reseed(0xf00d);
  fbt::SeqSim sim(target);
  sim.load_reset_state();

  fbt::Table table("Table 4.1: Example of primary input subsequence selection "
                   "(target " + target_name + ", SWAfunc' = " +
                   fbt::Table::num(bound, 2) + "%)");
  table.set_header({"Cycle i", "SWA(i)%", "Violation"});
  std::vector<std::size_t> violations;
  {
    FBT_OBS_PHASE("construct");
    for (std::size_t c = 0; c < length; ++c) {
      const fbt::SeqStep step = sim.step(tpg.next_vector());
      const bool violation = c > 0 && step.switching_percent > bound;
      if (violation) violations.push_back(c);
      table.add_row({std::to_string(c),
                     c == 0 ? "-" : fbt::Table::num(step.switching_percent, 2),
                     violation ? "**" : ""});
    }
  }
  FBT_OBS_COUNTER_ADD("bist.swa_violations", violations.size());
  table.print();

  std::printf("\nUsable subsequences (tests every 2 cycles, ends trimmed to "
              "even length):\n");
  std::size_t start = 0;
  auto emit = [&](std::size_t from, std::size_t to) {
    const std::size_t usable = (to - from) & ~std::size_t{1};
    if (usable >= 2) {
      std::printf("  P_%zu,%zu  -> %zu tests\n", from, from + usable,
                  usable / 2);
      FBT_OBS_COUNTER_ADD("bist.tests_extracted", usable / 2);
    }
  };
  for (const std::size_t v : violations) {
    emit(start, v);
    start = v;  // p(v-1)->p(v) transition excluded; restart at the violation
  }
  emit(start, length);
  std::printf("[bench_table4_1] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "table4_1",
      {{"target", target_name},
       {"driver", driver_name},
       {"length", std::to_string(length)}});
  return 0;
}
