// Memory/walltime scaling sweep over synthetic circuits.
//
// Builds deterministic synthetic CUTs at several gate counts (default 2k to
// 120k gates) and, per size, runs the structures every flow allocates --
// netlist + FlatFanins CSR, collapsed fault list, bit-parallel simulator --
// through a bounded simulate + grade workload. Records per-size walltime,
// peak RSS, deterministic content-byte footprints, and bytes-per-gate into
// BENCH_scale.json (run-report schema v3 "memory" section). CI diffs the
// report against bench/baselines/BENCH_scale.json with a tight
// bytes-per-gate gate: a data-structure growth regression fails the build
// even when walltime noise hides it.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuits/synth.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/flat_fanins.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/run_report.hpp"
#include "sim/bitsim.hpp"
#include "serve/shutdown.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

// Referenced from the signal-flush path, which must stay capture-free.
std::string g_report_name = "scale";

std::vector<std::size_t> parse_sizes(const std::string& spec) {
  std::vector<std::size_t> sizes;
  std::size_t value = 0;
  bool have_digit = false;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      have_digit = true;
    } else {
      if (have_digit) sizes.push_back(value);
      value = 0;
      have_digit = false;
    }
  }
  if (have_digit) sizes.push_back(value);
  return sizes;
}

fbt::TestSet random_tests(const fbt::Netlist& nl, std::size_t count,
                          std::uint64_t seed) {
  fbt::Pcg32 rng(seed);
  fbt::TestSet tests;
  for (std::size_t i = 0; i < count; ++i) {
    fbt::BroadsideTest t;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      t.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      t.v1.push_back(rng.chance(1, 2));
      t.v2.push_back(rng.chance(1, 2));
    }
    tests.push_back(std::move(t));
  }
  return tests;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  // Defaults are the CI sweep AND the checked-in baseline's configuration:
  // four sizes spanning 2k..120k gates keep the job under a minute while
  // exercising the >=100k point the scaling story needs.
  const std::string sizes_spec = cli.get("sizes", "2000,8000,30000,120000");
  const auto num_tests = static_cast<std::size_t>(cli.get_int("tests", 8));
  const auto fault_cap =
      static_cast<std::size_t>(cli.get_int("fault-cap", 2000));
  const auto sim_cycles = static_cast<std::size_t>(cli.get_int("cycles", 16));
  // Distinct report name for the gated long sweep (500k/1M gates), so its
  // baseline lives next to -- not on top of -- the default one.
  const std::string report_name = cli.get("report", "scale");
  g_report_name = report_name;
  constexpr std::uint64_t kSeed = 0x5ca1ab1eULL;

  // On SIGINT/SIGTERM: flush the journal + write the (partial) bench
  // report before exiting with the conventional 128+signum status.
  fbt::serve::GracefulShutdown shutdown([](int sig) {
    std::fprintf(stderr, "[bench_scale] caught signal %d, flushing report\n",
                 sig);
    fbt::obs::write_bench_report(g_report_name, {{"interrupted", "yes"}});
    std::_Exit(fbt::serve::GracefulShutdown::exit_status(sig));
  });

  const std::vector<std::size_t> sizes = parse_sizes(sizes_spec);
  if (sizes.empty()) {
    std::fprintf(stderr, "[bench_scale] no sizes parsed from '%s'\n",
                 sizes_spec.c_str());
    return 2;
  }

  fbt::Timer total;
  fbt::Table table("Scale sweep (" + std::to_string(num_tests) + " tests, " +
                   std::to_string(fault_cap) + "-fault cap)");
  table.set_header({"gates", "faults", "build ms", "parse ms", "sim ms",
                    "grade ms", "footprint MiB", "bytes/gate",
                    "peak RSS MiB"});

  for (const std::size_t gates : sizes) {
    FBT_OBS_PHASE("scale");
    fbt::Timer size_timer;

    fbt::SynthParams params;
    params.name = "scale_g" + std::to_string(gates);
    params.num_inputs = 64;
    params.num_outputs = 32;
    params.num_flops = gates / 10;
    params.num_gates = gates;
    params.seed = kSeed;

    double build_ms = 0.0;
    double parse_ms = 0.0;
    std::uint64_t footprint = 0;

    // Emit the synthetic CUT to .bench text, drop it, and re-enter through
    // the streaming parser: every sweep point then exercises the full
    // parse -> finalize -> FlatFanins -> bounded-grade path on arena
    // storage (the 1M-gate acceptance path), not just the emit path. The
    // round-trip is id- and structure-preserving, so footprints match the
    // directly synthesized netlist.
    fbt::Timer build_timer;
    std::string bench_text;
    {
      FBT_OBS_PHASE("synthesize");
      const fbt::Netlist built = fbt::generate_synthetic(params);
      bench_text = fbt::write_bench(built);
    }
    build_ms = build_timer.ms();
    fbt::Timer parse_timer;
    fbt::Netlist nl = [&] {
      FBT_OBS_PHASE("parse");
      fbt::Netlist parsed = fbt::parse_bench(bench_text, params.name);
      FBT_OBS_ALLOC_CHARGE(parsed.footprint_bytes());
      return parsed;
    }();
    parse_ms = parse_timer.ms();
    bench_text.clear();
    bench_text.shrink_to_fit();
    // Set by the finalize() inside parse_bench just above; snapshot it per
    // size before a later finalize overwrites the shared gauge.
    const double finalize_ms =
        fbt::obs::registry().gauge("netlist.finalize_duration_ms").value();
    const fbt::FlatFanins flat = [&] {
      FBT_OBS_PHASE("flatten");
      fbt::FlatFanins built(nl);
      FBT_OBS_ALLOC_CHARGE(built.footprint_bytes());
      return built;
    }();
    const fbt::TransitionFaultList all_faults = [&] {
      FBT_OBS_PHASE("collapse");
      auto built = fbt::TransitionFaultList::collapsed(nl);
      FBT_OBS_ALLOC_CHARGE(built.footprint_bytes());
      return built;
    }();

    // Cap the graded fault list so grading stays O(tests * cap) while the
    // structures under measurement stay full-size.
    std::vector<fbt::TransitionFault> sub(
        all_faults.faults().begin(),
        all_faults.faults().begin() +
            static_cast<std::ptrdiff_t>(
                std::min(fault_cap, all_faults.size())));
    const fbt::TransitionFaultList graded =
        fbt::TransitionFaultList::from_faults(std::move(sub));

    fbt::Timer sim_timer;
    fbt::BitSim sim(nl);
    {
      FBT_OBS_PHASE("simulate");
      fbt::Pcg32 rng(kSeed ^ gates);
      for (std::size_t c = 0; c < sim_cycles; ++c) {
        for (const fbt::NodeId pi : nl.inputs()) {
          sim.set_value(pi, rng.next64());
        }
        for (const fbt::NodeId ff : nl.flops()) {
          sim.set_value(ff, rng.next64());
        }
        sim.eval();
      }
    }
    const double sim_ms = sim_timer.ms();

    fbt::Timer grade_timer;
    fbt::BroadsideFaultSim grader(nl);
    const fbt::TestSet tests = random_tests(nl, num_tests, kSeed);
    std::vector<std::uint32_t> counts(graded.size(), 0);
    {
      FBT_OBS_PHASE("grade");
      grader.grade(tests, graded, counts, 1);
    }
    const double grade_ms = grade_timer.ms();

    // Deterministic content bytes of everything this size allocated. The
    // registry keeps one entry per name, so after the loop the recorded
    // values -- and the report's bytes_per_gate -- belong to the largest
    // size, which is the one worth gating.
    footprint = nl.footprint_bytes() + flat.footprint_bytes() +
                all_faults.footprint_bytes() + sim.footprint_bytes() +
                grader.footprint_bytes() + fbt::test_set_footprint_bytes(tests);
    FBT_OBS_FOOTPRINT("scale.netlist", nl.footprint_bytes());
    FBT_OBS_FOOTPRINT("scale.flat_fanins", flat.footprint_bytes());
    FBT_OBS_FOOTPRINT("scale.fault_list", all_faults.footprint_bytes());
    FBT_OBS_FOOTPRINT("scale.bitsim", sim.footprint_bytes());
    FBT_OBS_FOOTPRINT("scale.fault_sim", grader.footprint_bytes());
    FBT_OBS_FOOTPRINT("scale.tests", fbt::test_set_footprint_bytes(tests));
    FBT_OBS_GAUGE_SET("flow.num_gates", nl.num_gates());
    FBT_OBS_GAUGE_SET("flow.num_faults", all_faults.size());

    const double walltime_ms = size_timer.ms();
    const std::uint64_t peak_rss = fbt::obs::peak_rss_bytes();
    const double bytes_per_gate =
        static_cast<double>(footprint) / static_cast<double>(nl.num_gates());

    // Dynamic per-size metric names: bypass the macros (they cache one name
    // per call site) and talk to the registry directly.
    const std::string prefix = "scale.g" + std::to_string(gates);
    fbt::obs::registry().gauge(prefix + ".gates").set(
        static_cast<double>(nl.num_gates()));
    fbt::obs::registry().gauge(prefix + ".walltime_ms").set(walltime_ms);
    fbt::obs::registry().gauge(prefix + ".peak_rss_bytes").set(
        static_cast<double>(peak_rss));
    fbt::obs::registry().gauge(prefix + ".footprint_bytes").set(
        static_cast<double>(footprint));
    fbt::obs::registry().gauge(prefix + ".bytes_per_gate").set(bytes_per_gate);
    fbt::obs::registry().gauge(prefix + ".parse_ms").set(parse_ms);
    // The finalize-time / arena-size pair the Memory panel renders per scale
    // point: how long single-pass levelization took and how many bytes the
    // SoA arena (types, interned names, fanin CSR, name index) holds.
    fbt::obs::registry().gauge(prefix + ".netlist_finalize_ms")
        .set(finalize_ms);
    fbt::obs::registry().gauge(prefix + ".netlist_arena_bytes").set(
        static_cast<double>(nl.arena_bytes()));

    table.add_row({std::to_string(nl.num_gates()),
                   std::to_string(all_faults.size()),
                   fbt::Table::num(build_ms, 1), fbt::Table::num(parse_ms, 1),
                   fbt::Table::num(sim_ms, 1), fbt::Table::num(grade_ms, 1),
                   fbt::Table::num(static_cast<double>(footprint) /
                                       (1024.0 * 1024.0),
                                   2),
                   fbt::Table::num(bytes_per_gate, 1),
                   fbt::Table::num(static_cast<double>(peak_rss) /
                                       (1024.0 * 1024.0),
                                   1)});
  }
  table.print();
  std::printf("[bench_scale] %zu sizes done in %s\n", sizes.size(),
              total.pretty().c_str());

  const bool ok = fbt::obs::write_bench_report(
      report_name, {{"sizes", sizes_spec},
                    {"tests", std::to_string(num_tests)},
                    {"fault_cap", std::to_string(fault_cap)},
                    {"cycles", std::to_string(sim_cycles)}});
  return ok ? 0 : 1;
}
