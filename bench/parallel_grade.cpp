// Serial vs parallel fault-grading throughput on one registry circuit.
//
// Grades the same random broadside test set against the full collapsed fault
// list with the serial BroadsideFaultSim and with ParallelBroadsideFaultSim
// at 2, 4, and hardware_concurrency threads, verifying bit-identical detect
// counts at every configuration. A high detect limit keeps every fault
// active so both engines do the full propagation work -- this is the
// throughput bound the seed-sweep experiments (Tables 4.1-4.6) sit on.
// Writes BENCH_parallel_grade.json with per-configuration timings and
// speedups over serial.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "fault/parallel_fault_sim.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "serve/shutdown.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

fbt::TestSet random_tests(const fbt::Netlist& nl, std::size_t count,
                          std::uint64_t seed) {
  fbt::Pcg32 rng(seed);
  fbt::TestSet tests;
  for (std::size_t i = 0; i < count; ++i) {
    fbt::BroadsideTest t;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      t.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      t.v1.push_back(rng.chance(1, 2));
      t.v2.push_back(rng.chance(1, 2));
    }
    tests.push_back(std::move(t));
  }
  return tests;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  // des_perf is the largest registry circuit (4800 gates, 1200 flops).
  const std::string target_name = cli.get("target", "des_perf");
  const auto num_tests = static_cast<std::size_t>(cli.get_int("tests", 256));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  constexpr std::uint32_t kNoDrop = 1u << 30;  // keep every fault active

  // On SIGINT/SIGTERM: flush the journal + write the (partial) bench
  // report before exiting with the conventional 128+signum status.
  fbt::serve::GracefulShutdown shutdown([](int sig) {
    std::fprintf(stderr, "[bench_parallel_grade] caught signal %d, flushing report\n",
                 sig);
    fbt::obs::write_bench_report("parallel_grade", {{"interrupted", "yes"}});
    std::_Exit(fbt::serve::GracefulShutdown::exit_status(sig));
  });

  fbt::Timer total;
  const fbt::Netlist nl = fbt::load_benchmark(target_name);
  const fbt::TransitionFaultList faults =
      fbt::TransitionFaultList::collapsed(nl);
  const fbt::TestSet tests = random_tests(nl, num_tests, 0xbadcafeULL);

  std::printf("[bench_parallel_grade] target=%s tests=%zu faults=%zu "
              "hw_threads=%zu\n",
              target_name.c_str(), tests.size(), faults.size(),
              fbt::jobs::JobSystem::resolve_threads(0));

  // Serial reference: best of `repeats`.
  fbt::BroadsideFaultSim serial(nl);
  std::vector<std::uint32_t> serial_counts;
  double serial_ms = 1e300;
  for (std::size_t r = 0; r < repeats; ++r) {
    std::vector<std::uint32_t> counts(faults.size(), 0);
    fbt::Timer t;
    serial.grade(tests, faults, counts, kNoDrop);
    serial_ms = std::min(serial_ms, t.ms());
    serial_counts = std::move(counts);
  }
  FBT_OBS_GAUGE_SET("fault.parallel_bench_serial_ms", serial_ms);

  fbt::Table table("Parallel fault grading (" + target_name + ", " +
                   std::to_string(tests.size()) + " tests, " +
                   std::to_string(faults.size()) + " faults)");
  table.set_header({"threads", "grade ms", "speedup", "identical"});
  table.add_row({"serial", fbt::Table::num(serial_ms, 2), "1.00", "ref"});

  std::vector<std::size_t> configs = {2, 4};
  const std::size_t hw = fbt::jobs::JobSystem::resolve_threads(0);
  if (std::find(configs.begin(), configs.end(), hw) == configs.end()) {
    configs.push_back(hw);
  }
  bool all_identical = true;
  for (const std::size_t threads : configs) {
    fbt::ParallelBroadsideFaultSim parallel(nl, threads);
    std::vector<std::uint32_t> counts;
    double best_ms = 1e300;
    for (std::size_t r = 0; r < repeats; ++r) {
      std::vector<std::uint32_t> c(faults.size(), 0);
      fbt::Timer t;
      parallel.grade(tests, faults, c, kNoDrop);
      best_ms = std::min(best_ms, t.ms());
      counts = std::move(c);
    }
    const bool identical = counts == serial_counts;
    all_identical = all_identical && identical;
    const double speedup = best_ms > 0 ? serial_ms / best_ms : 0.0;
    const std::string label = std::to_string(threads) + "t";
    table.add_row({label, fbt::Table::num(best_ms, 2),
                   fbt::Table::num(speedup, 2), identical ? "yes" : "NO"});
    // Dynamic metric names: bypass the macro (it caches one name per call
    // site) and talk to the registry directly.
    fbt::obs::registry()
        .gauge("fault.parallel_bench_" + label + "_ms")
        .set(best_ms);
    fbt::obs::registry()
        .gauge("fault.parallel_bench_speedup_" + label)
        .set(speedup);
    if (threads == 4) {
      FBT_OBS_GAUGE_SET("fault.parallel_speedup_4t", speedup);
    }
  }
  table.print();
  std::printf("[bench_parallel_grade] identical=%s done in %s\n",
              all_identical ? "yes" : "NO", total.pretty().c_str());

  fbt::obs::write_bench_report(
      "parallel_grade",
      {{"target", target_name},
       {"tests", std::to_string(tests.size())},
       {"faults", std::to_string(faults.size())},
       {"repeats", std::to_string(repeats)},
       {"hw_threads", std::to_string(hw)},
       {"identical", all_identical ? "yes" : "no"}});
  return all_identical ? 0 : 1;
}
