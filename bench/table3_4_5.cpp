// Reproduces dissertation Tables 3.4 and 3.5: how close the recalculated
// ("final") path delays come to the delays under an actual test ("after TG").
//
//   Table 3.4  for one circuit: per selected fault, the traditional STA
//              delay, the delay under the fault's INAs, the delay under a
//              generated test, the original-vs-final difference, and that
//              difference in inverter-rise units (diff_unit).
//   Table 3.5  per circuit: Pct.1 = share of faults whose original delay
//              differs from the after-TG delay; Pct.2 = of those, the share
//              where the final delay is closer to the after-TG delay.
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "atpg/podem.hpp"
#include "circuits/registry.hpp"
#include "fault/fault_sim.hpp"
#include "sta/path_selection.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Case assignments of a fully specified broadside test: every primary input
/// in both frames, every state variable in both frames (s2 derived).
std::vector<fbt::Assignment> test_case_values(const fbt::Netlist& nl,
                                              const fbt::BroadsideTest& test) {
  std::vector<fbt::Assignment> values;
  const auto s2 = fbt::second_state(nl, test);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    values.push_back({{fbt::Frame::k1, nl.inputs()[i]}, test.v1[i] != 0});
    values.push_back({{fbt::Frame::k2, nl.inputs()[i]}, test.v2[i] != 0});
  }
  for (std::size_t i = 0; i < nl.num_flops(); ++i) {
    values.push_back({{fbt::Frame::k1, nl.flops()[i]},
                      test.scan_state[i] != 0});
    values.push_back({{fbt::Frame::k2, nl.flops()[i]}, s2[i] != 0});
  }
  return values;
}

/// Generates a test detecting the whole path (all its transition faults) and
/// returns the path's delay under that test, or nullopt when ATPG fails.
std::optional<double> after_tg_delay(const fbt::Netlist& nl,
                                     const fbt::DelayLibrary& lib,
                                     const fbt::SelectedPathFault& sel) {
  const auto trs = fbt::transition_faults_along(nl, sel.fault);
  fbt::PodemConfig cfg;
  cfg.backtrack_limit = 2000;
  cfg.time_limit_seconds = 0.15;
  fbt::PodemEngine engine(nl, cfg);

  // Heuristic first (target the path's transition faults one after another
  // on top of the INAs, §2.3.4-style), then a bounded branch-and-bound.
  for (int attempt = 0; attempt < 3; ++attempt) {
    engine.reset();
    if (!engine.preassign(sel.input_assignments)) return std::nullopt;
    bool all = true;
    for (const fbt::TransitionFault& tf : trs) {
      if (engine.target(tf, /*backtrack_into_earlier=*/false).status !=
          fbt::PodemStatus::kDetected) {
        all = false;
        break;
      }
    }
    if (all) {
      const fbt::BroadsideTest test = engine.extract_test();
      const fbt::TimingGraph graph(nl, lib, test_case_values(nl, test));
      return graph.path_delay(sel.fault);
    }
  }
  engine.reset();
  if (!engine.preassign(sel.input_assignments)) return std::nullopt;
  if (engine.solve(trs, true).status != fbt::PodemStatus::kDetected) {
    return std::nullopt;
  }
  const fbt::BroadsideTest test = engine.extract_test();
  const fbt::TimingGraph graph(nl, lib, test_case_values(nl, test));
  return graph.path_delay(sel.fault);
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string detail_circuit = cli.get("circuit", "s1423");
  const auto detail_rows = static_cast<std::size_t>(cli.get_int("rows", 8));
  const auto per_circuit = static_cast<std::size_t>(cli.get_int("N", 20));
  const double budget = cli.get_double("budget-seconds", 20.0);
  std::vector<std::string> circuits = {"s1423", "s5378", "b11", "b12"};

  const fbt::DelayLibrary lib = fbt::DelayLibrary::standard_018um();
  fbt::Timer total;

  // ---- Table 3.4 ---------------------------------------------------------
  {
    const fbt::Netlist nl = fbt::load_benchmark(detail_circuit);
    fbt::PathSelectionConfig cfg;
    cfg.num_target = 4 * detail_rows;
    cfg.initial_pool = 1200;
    cfg.expansion_cap = 16;
    cfg.max_processed = 8 * detail_rows;
    const fbt::PathSelectionResult sel = fbt::select_critical_paths(nl, lib,
                                                                    cfg);
    fbt::Table t34("Table 3.4: Path delay comparison of " + detail_circuit);
    t34.set_header({"Fault", "original", "final", "after TG", "diff",
                    "diff_unit"});
    std::size_t shown = 0;
    std::size_t index = 0;
    fbt::Timer budget_timer;
    for (const fbt::SelectedPathFault& fault : sel.target) {
      ++index;
      if (shown == detail_rows || budget_timer.seconds() > budget) break;
      const auto tg = after_tg_delay(nl, lib, fault);
      if (!tg.has_value()) continue;
      const double diff = fault.original_delay - fault.final_delay;
      t34.add_row({"fp" + std::to_string(index),
                   fbt::Table::num(fault.original_delay, 3),
                   fbt::Table::num(fault.final_delay, 3),
                   fbt::Table::num(*tg, 3), fbt::Table::num(diff, 3),
                   fbt::Table::num(diff / lib.unit_delay(), 1)});
      ++shown;
    }
    t34.print();
    std::printf("\n");
  }

  // ---- Table 3.5 ---------------------------------------------------------
  fbt::Table t35("Table 3.5: Path delay comparison");
  t35.set_header({"Circuit", "Pct. 1 %", "Pct. 2 %"});
  for (const std::string& name : circuits) {
    fbt::Timer timer;
    const fbt::Netlist nl = fbt::load_benchmark(name);
    fbt::PathSelectionConfig cfg;
    cfg.num_target = 4 * per_circuit;
    cfg.initial_pool = 10 * per_circuit;
    cfg.expansion_cap = 16;
    cfg.max_processed = 6 * per_circuit;
    const fbt::PathSelectionResult sel = fbt::select_critical_paths(nl, lib,
                                                                    cfg);
    std::size_t with_test = 0;
    std::size_t orig_differs = 0;
    std::size_t final_closer = 0;
    // Scan the whole selection, keeping the faults for which a test was
    // found (the dissertation compares delays only where tests exist).
    fbt::Timer budget_timer;
    for (const fbt::SelectedPathFault& fault : sel.target) {
      if (with_test >= per_circuit || budget_timer.seconds() > budget) break;
      const auto tg = after_tg_delay(nl, lib, fault);
      if (!tg.has_value()) continue;
      ++with_test;
      if (std::abs(fault.original_delay - *tg) < 1e-9) continue;
      ++orig_differs;
      if (std::abs(fault.final_delay - *tg) <
          std::abs(fault.original_delay - *tg) - 1e-12) {
        ++final_closer;
      }
    }
    const double pct1 =
        with_test == 0 ? 0.0 : 100.0 * orig_differs / with_test;
    const double pct2 =
        orig_differs == 0 ? 0.0 : 100.0 * final_closer / orig_differs;
    t35.add_row({name, fbt::Table::num(pct1, 1), fbt::Table::num(pct2, 1)});
    std::fprintf(stderr, "[table3_4_5] %s done in %s (tests for %zu faults)\n",
                 name.c_str(), timer.pretty().c_str(), with_test);
  }
  t35.print();
  std::printf("[bench_table3_4_5] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "table3_4_5",
      {{"circuit", detail_circuit},
       {"rows", std::to_string(detail_rows)},
       {"N", std::to_string(per_circuit)},
       {"budget-seconds", std::to_string(budget)}});
  return 0;
}
