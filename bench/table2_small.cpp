// Reproduces dissertation Tables 2.1, 2.3, and 2.5: deterministic broadside
// test generation for transition path delay faults on the smaller ISCAS89
// circuits with ALL paths enumerated.
//
//   Table 2.1  per circuit: #faults, detected, undetectable, aborted, time
//   Table 2.3  detected faults credited to each sub-procedure (the column
//              "Prep." is the upper bound on detectable faults left after
//              preprocessing, as in the dissertation)
//   Table 2.5  run time of each sub-procedure
//
// Scaled defaults: the dissertation enumerates every path; path counts here
// are capped with --max-paths (rows whose enumeration was truncated are
// marked '+'). --circuits narrows the circuit list.
#include <cstdio>
#include <string>
#include <vector>

#include "atpg/tpdf_engine.hpp"
#include "circuits/registry.hpp"
#include "paths/path.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const auto max_paths =
      static_cast<std::size_t>(cli.get_int("max-paths", 400));
  const std::string only = cli.get("circuits", "");
  const std::vector<std::string> circuits = {
      "s27",  "s298", "s344", "s349", "s382", "s386",
      "s444", "s510", "s526", "s820", "s832", "s953"};

  fbt::Timer total;
  fbt::Table t21("Table 2.1: Results of test generation (enumerate all paths)");
  t21.set_header({"Circuit", "No. of faults", "No. of Det.", "No. of Undet.",
                  "No. of Abr.", "Run time"});
  fbt::Table t23("Table 2.3: Number of detected faults for sub-procedures");
  t23.set_header({"Circuit", "Prep. Proc.", "FSim Proc.", "Heur. Proc.",
                  "Bran. Proc."});
  fbt::Table t25("Table 2.5: Run time comparison of sub-procedures");
  t25.set_header({"Circuit", "TG for Tran.", "Prep. Proc.", "FSim Proc.",
                  "Heur. Proc.", "Bran. Proc."});

  for (const std::string& name : circuits) {
    if (!only.empty() && only.find(name) == std::string::npos) continue;
    fbt::Timer timer;
    const fbt::Netlist nl = fbt::load_benchmark(name);
    const fbt::PathEnumeration paths = fbt::enumerate_all_paths(nl, max_paths);
    std::vector<fbt::PathDelayFault> faults;
    for (const fbt::Path& p : paths.paths) {
      faults.push_back({p, true});
      faults.push_back({p, false});
    }
    fbt::TpdfEngineConfig cfg;
    cfg.rng_seed = 2024;
    fbt::TpdfEngine engine(nl, cfg);
    const fbt::TpdfRunReport report = engine.run(faults);

    const std::string count = std::to_string(report.num_faults) +
                              (paths.complete ? "" : "+");
    t21.add_row({name, count, std::to_string(report.detected),
                 std::to_string(report.undetectable),
                 std::to_string(report.aborted), timer.pretty()});
    t23.add_row({name, std::to_string(report.detectable_upper_bound),
                 std::to_string(report.detected_fsim),
                 std::to_string(report.detected_heuristic),
                 std::to_string(report.detected_bnb)});
    t25.add_row({name, fbt::Timer::format_duration(report.seconds_tf_atpg),
                 fbt::Timer::format_duration(report.seconds_preprocessing),
                 fbt::Timer::format_duration(report.seconds_fsim),
                 fbt::Timer::format_duration(report.seconds_heuristic),
                 fbt::Timer::format_duration(report.seconds_bnb)});
    std::fprintf(stderr, "[table2_small] %s done in %s\n", name.c_str(),
                 timer.pretty().c_str());
  }
  t21.print();
  std::printf("\n");
  t23.print();
  std::printf("\n");
  t25.print();
  std::printf("[bench_table2_1_3_5] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "table2_1_3_5",
      {{"max-paths", std::to_string(max_paths)},
       {"circuits", only}});
  return 0;
}
