// Reproduces dissertation Table 4.4: built-in test generation with state
// holding. For targets whose functional-broadside-only coverage is low, the
// optional DFT phase of §4.5 selects non-overlapping sets of state variables
// (binary-tree procedure, Fig. 4.12), holds each set every 2^h = 4 cycles
// during additional on-chip generation, and reports the coverage recovered,
// the aggregate sequence statistics, and the (slightly) larger hardware.
#include <cstdio>
#include <string>

#include "flow/bist_flow.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct Row {
  const char* target;
  const char* driver;
};

// The lowest-coverage cases of our Table 4.3 run (the dissertation applies
// holding wherever functional-only coverage stayed below 90%; our synthetic
// equivalents are easier for random patterns, so the residual gaps are
// smaller but sit on the same rows -- the strongly constrained ones).
const Row kRows[] = {
    {"des_area", "s35932e"},  {"des_area", "wb_conmax"},
    {"systemcaes", "s35932e"}, {"b14", "aes_core"},
    {"s35932e", "spi"},        {"b14", "systemcdes"},
};

std::string display(const std::string& name) {
  if (name == "s35932e") return "s35932";
  if (name == "s38584e") return "s38584";
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const auto L = static_cast<std::size_t>(cli.get_int("L", 768));
  const auto height = static_cast<unsigned>(cli.get_int("tree-height", 3));
  const std::string only = cli.get("targets", "");

  fbt::Timer total;
  fbt::Table table("Table 4.4: Built-in test generation with state holding");
  table.set_header({"Circuit", "Driving block", "Nh", "Nbits", "Nmulti",
                    "Nsegmax", "Lmax", "Nseeds", "Ntests", "SWA%",
                    "FC Imp.%", "Final FC%", "HW Area", "Over.%"});

  for (const Row& row : kRows) {
    if (!only.empty() &&
        only.find(display(row.target)) == std::string::npos) {
      continue;
    }
    fbt::Timer timer;
    // Phase 1: the constrained functional-broadside run of Table 4.3.
    fbt::BistExperimentConfig cfg;
    cfg.target_name = row.target;
    cfg.driver_name = row.driver;
    cfg.calibration.num_sequences = 6;
    cfg.calibration.sequence_length = 1500;
    cfg.generation.segment_length = L;
    cfg.generation.max_segment_failures = 3;
    cfg.generation.max_sequence_failures = 3;
    cfg.generation.rng_seed = 0x51de0u ^ std::hash<std::string>{}(
                                             std::string(row.target) +
                                             row.driver);
    fbt::BistExperimentResult base = fbt::run_bist_experiment(cfg);

    // Phase 2: state holding (h = 2 -> hold every 4 cycles, §4.6).
    fbt::HoldSelectionConfig hold;
    hold.tree_height = height;  // dissertation: 6; scaled default 3
    hold.hold_period_log2 = 2;
    hold.eval = base.generation;
    hold.eval.max_segment_failures = 1;  // R = 1 for Det evaluation
    hold.eval.max_sequence_failures = 1; // Q = 1
    hold.commit = base.generation;       // R = 3, Q = 3 for committed sets
    const fbt::HoldExperimentResult r =
        fbt::run_hold_experiment(base, hold, /*rng_seed=*/0x401d);

    table.add_row(
        {display(row.target), display(row.driver),
         std::to_string(r.hold.selected.size()),
         std::to_string(r.hold.total_held_flops),
         std::to_string(r.hold.num_sequences),
         std::to_string(r.hold.nseg_max), std::to_string(r.hold.lmax),
         std::to_string(r.hold.num_seeds), std::to_string(r.hold.num_tests),
         fbt::Table::num(r.hold.peak_swa, 2),
         fbt::Table::num(r.coverage_improvement_percent, 2),
         fbt::Table::num(r.final_coverage_percent, 2),
         std::to_string(static_cast<long long>(r.hw_area)),
         fbt::Table::num(r.overhead_percent, 2)});
    std::fprintf(stderr, "[table4_4] %s / %s done in %s\n",
                 display(row.target).c_str(), row.driver, timer.pretty().c_str());
  }
  table.print();
  std::printf("[bench_table4_4] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "table4_4",
      {{"L", std::to_string(L)},
       {"tree-height", std::to_string(height)},
       {"targets", only}});
  return 0;
}
