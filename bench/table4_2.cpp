// Reproduces dissertation Table 4.2: parameters of the chapter-4 benchmark
// circuits -- primary outputs N_PO, primary inputs N_in, specified inputs in
// the primary input cube N_SP (= inserted biasing gates), state variables
// N_SV. Columns N_PO/N_in/N_SV come from the registry (matching the published
// interface counts); N_SP is *computed* by the repeated-synchronization
// analysis of §4.3 on our synthetic equivalents.
#include <cstdio>

#include "bist/input_cube.hpp"
#include "circuits/registry.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

const char* kTargets[] = {"s35932e",    "s38584e",    "b14",      "b20",
                          "spi",        "wb_dma",     "systemcaes",
                          "systemcdes", "des_area",   "aes_core",
                          "wb_conmax",  "des_perf"};

const char* display_name(const std::string& name) {
  if (name == "s35932e") return "s35932";
  if (name == "s38584e") return "s38584";
  return name.c_str();
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  fbt::Timer timer;
  fbt::Table table("Table 4.2: Parameters for benchmark circuits");
  table.set_header({"Circuit", "NPO", "Nin", "Nsp", "NSV"});
  for (const char* name : kTargets) {
    const fbt::Netlist nl = fbt::load_benchmark(name);
    const fbt::InputCube cube = fbt::compute_input_cube(nl);
    table.add_row({display_name(name), std::to_string(nl.num_outputs()),
                   std::to_string(nl.num_inputs()),
                   std::to_string(cube.specified_count()),
                   std::to_string(nl.num_flops())});
  }
  table.print();
  std::printf("[bench_table4_2] done in %s\n", timer.pretty().c_str());
  (void)cli;
  fbt::obs::write_bench_report(
      "table4_2",
      {});
  return 0;
}
