// Demonstrates the hardware structures of dissertation Figures 4.2-4.8 and
// 4.10-4.13 as executable models:
//   Fig. 4.3  n-stage LFSR (maximal period check),
//   Fig. 4.4  n-stage MISR (signature + fault sensitivity),
//   Fig. 4.6  clock-cycle counter + test-apply strobe,
//   Fig. 4.7/4.8  TPG biasing network (empirical probabilities),
//   Fig. 4.10/4.11 state holding + hold-enable strobe,
//   Fig. 4.13 set-selection decoder,
//   Fig. 4.2/4.5 the complete on-chip session: TPG -> circuit -> MISR with
//   circular-shift response capture, fault-free vs faulty signature.
#include <cstdio>

#include "bist/counters.hpp"
#include "bist/functional_bist.hpp"
#include "bist/lfsr.hpp"
#include "bist/misr.hpp"
#include "bist/session.hpp"
#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  fbt::Timer total;

  std::printf("== Fig. 4.3: n-stage LFSR ==\n");
  for (const unsigned n : {8u, 12u, 16u}) {
    fbt::Lfsr lfsr(n);
    lfsr.seed(1);
    const std::uint32_t start = lfsr.state();
    std::uint64_t period = 0;
    do {
      lfsr.step();
      ++period;
    } while (lfsr.state() != start);
    std::printf("  %2u stages: period %llu (2^%u - 1 = %llu)\n", n,
                static_cast<unsigned long long>(period), n,
                static_cast<unsigned long long>((1ULL << n) - 1));
  }

  std::printf("\n== Fig. 4.6: clock cycle counter and test apply signal ==\n");
  {
    fbt::UpCounter counter(6);
    std::printf("  q=1 strobe over 12 cycles: ");
    for (int i = 0; i < 12; ++i) {
      std::printf("%c", fbt::apply_signal(counter, 1) ? 'A' : '.');
      counter.tick();
    }
    std::printf("   (a test every 2 cycles)\n");
  }

  std::printf("\n== Fig. 4.11: hold enable every 2^h cycles (h = 2) ==\n");
  {
    fbt::UpCounter counter(6);
    std::printf("  strobe over 12 cycles:     ");
    for (int i = 0; i < 12; ++i) {
      std::printf("%c", fbt::hold_enable(counter, 2) ? 'H' : '.');
      counter.tick();
    }
    std::printf("   (never on a capture transition)\n");
  }

  std::printf("\n== Fig. 4.13: set selection decoder ==\n");
  {
    fbt::SetDecoder dec(4);
    for (std::size_t sel = 0; sel < 4; ++sel) {
      std::printf("  set counter = %zu -> lines ", sel);
      for (std::size_t line = 0; line < 4; ++line) {
        std::printf("%c", dec.line(line, sel, true) ? '1' : '0');
      }
      std::printf("\n");
    }
  }

  std::printf("\n== Fig. 4.8: TPG biasing (circuit spi) ==\n");
  {
    const fbt::Netlist nl = fbt::load_benchmark("spi");
    fbt::Tpg tpg(nl, {});
    tpg.reseed(0xbeef);
    std::vector<std::size_t> ones(nl.num_inputs(), 0);
    const std::size_t trials = 8000;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto v = tpg.next_vector();
      for (std::size_t i = 0; i < v.size(); ++i) ones[i] += v[i];
    }
    std::size_t shown = 0;
    for (std::size_t i = 0; i < nl.num_inputs() && shown < 6; ++i) {
      const fbt::Val3 c = tpg.cube().values[i];
      if (c == fbt::Val3::kX && shown > 2) continue;
      std::printf("  input %3zu: C=%c  P(1) = %.3f\n", i,
                  c == fbt::Val3::k0 ? '0' : (c == fbt::Val3::k1 ? '1' : 'x'),
                  static_cast<double>(ones[i]) / trials);
      ++shown;
    }
    std::printf("  shift register size: %zu bits (m*Nsp + (Npi - Nsp))\n",
                tpg.shift_register_size());
  }

  std::printf("\n== Fig. 4.2/4.5: complete on-chip session (circuit s298) ==\n");
  {
    const fbt::Netlist nl = fbt::load_benchmark("s298");
    const fbt::ScanChains scan(nl, {});
    fbt::FunctionalBistConfig cfg;
    cfg.segment_length = 256;
    cfg.max_segment_failures = 2;
    cfg.max_sequence_failures = 2;
    cfg.bounded = false;
    fbt::FunctionalBistGenerator gen(nl, cfg);
    const fbt::TransitionFaultList faults =
        fbt::TransitionFaultList::collapsed(nl);
    std::vector<std::uint32_t> detect(faults.size(), 0);
    const fbt::FunctionalBistResult plan = gen.run(faults, detect);

    const fbt::SessionReport golden =
        fbt::run_bist_session(nl, plan, scan, {});
    std::printf("  tests applied: %zu, functional cycles: %zu, shift cycles: "
                "%zu, total: %zu\n",
                golden.tests_applied, golden.functional_cycles,
                golden.shift_cycles, golden.total_cycles);
    std::printf("  golden MISR signature: 0x%08x\n", golden.signature);

    // Inject the first detected fault; the signature must differ.
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (detect[f] == 0) continue;
      const fbt::TransitionFault& tf = faults.fault(f);
      const fbt::SessionReport faulty =
          fbt::run_bist_session(nl, plan, scan, {}, tf.line, tf.rising);
      std::printf("  with %s injected:  0x%08x  (%s)\n",
                  fault_name(nl, tf).c_str(), faulty.signature,
                  faulty.signature == golden.signature ? "ALIASED"
                                                       : "flagged");
      break;
    }
  }

  std::printf("\n[bench_fig4_hw] done in %s\n", total.pretty().c_str());
  (void)cli;
  fbt::obs::write_bench_report(
      "fig4_hw",
      {});
  return 0;
}
