// Scalar vs speculative packed candidate-seed evaluation throughput.
//
// The segment construction loop's dominant rejected-seed cost is the
// sequential simulation of candidate trajectories that end up discarded
// (dissertation §4.4: R consecutive failures per reseed attempt). This bench
// evaluates the same seed batch through the scalar reference loop
// (FunctionalBistGenerator::evaluate_candidate) and through the 64-lane
// packed engine (PackedCandidateEngine), verifying candidate-for-candidate
// identity, then compares full end-to-end construction runs at
// speculation_lanes=1 vs 64. Writes BENCH_seed_search.json.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bist/functional_bist.hpp"
#include "bist/packed_candidates.hpp"
#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "fault/fault.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "sim/seqsim.hpp"
#include "serve/shutdown.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

bool same_candidate(const fbt::CandidateSegment& a,
                    const fbt::CandidateSegment& b) {
  if (a.usable_cycles != b.usable_cycles) return false;
  if (a.peak_swa != b.peak_swa) return false;
  if (a.tests.size() != b.tests.size()) return false;
  for (std::size_t t = 0; t < a.tests.size(); ++t) {
    if (a.tests[t].scan_state != b.tests[t].scan_state) return false;
    if (a.tests[t].v1 != b.tests[t].v1) return false;
    if (a.tests[t].v2 != b.tests[t].v2) return false;
  }
  return true;
}

struct ThroughputResult {
  double scalar_ms = 0.0;
  double packed_ms = 0.0;
  bool identical = true;
  double speedup() const {
    return packed_ms > 0 ? scalar_ms / packed_ms : 0.0;
  }
};

/// Evaluates `seeds` from the reset state through both paths, best of
/// `repeats`, and verifies per-candidate identity once.
ThroughputResult measure_throughput(const fbt::Netlist& nl,
                                    const fbt::FunctionalBistConfig& cfg,
                                    const std::vector<std::uint32_t>& seeds,
                                    std::size_t repeats) {
  ThroughputResult out;
  fbt::FunctionalBistGenerator gen(nl, [&] {
    fbt::FunctionalBistConfig c = cfg;
    c.speculation_lanes = 1;  // scalar reference path
    return c;
  }());
  fbt::SeqSim sim(nl);
  sim.load_reset_state();
  const fbt::SeqSim::Snapshot start = sim.snapshot();

  std::vector<fbt::CandidateSegment> scalar_out;
  out.scalar_ms = 1e300;
  for (std::size_t r = 0; r < repeats; ++r) {
    std::vector<fbt::CandidateSegment> batch;
    batch.reserve(seeds.size());
    fbt::Timer t;
    for (const std::uint32_t seed : seeds) {
      batch.push_back(gen.evaluate_candidate(sim, seed));
      sim.restore(start);
    }
    out.scalar_ms = std::min(out.scalar_ms, t.ms());
    scalar_out = std::move(batch);
  }

  const fbt::Tpg tpg(nl, cfg.tpg);
  fbt::PackedCandidateEngine engine(nl, tpg, cfg,
                                    fbt::PackedSeqSim::kLanes);
  std::vector<fbt::CandidateSegment> packed_out;
  out.packed_ms = 1e300;
  for (std::size_t r = 0; r < repeats; ++r) {
    std::vector<fbt::CandidateSegment> batch;
    batch.reserve(seeds.size());
    fbt::Timer t;
    for (std::size_t b = 0; b < seeds.size(); b += engine.lanes()) {
      const std::size_t n = std::min(engine.lanes(), seeds.size() - b);
      engine.speculate(sim, {seeds.data() + b, n});
      for (std::size_t k = 0; k < n; ++k) {
        batch.push_back(engine.take_pending());
      }
    }
    out.packed_ms = std::min(out.packed_ms, t.ms());
    packed_out = std::move(batch);
  }

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (!same_candidate(scalar_out[i], packed_out[i])) {
      out.identical = false;
      std::printf("[bench_seed_search] MISMATCH at seed index %zu\n", i);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  // des_perf is the largest registry circuit (4800 gates, 1200 flops).
  const std::string target_name = cli.get("target", "des_perf");
  const auto num_seeds = static_cast<std::size_t>(cli.get_int("seeds", 128));
  const auto length = static_cast<std::size_t>(cli.get_int("length", 256));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));

  // On SIGINT/SIGTERM: flush the journal + write the (partial) bench
  // report before exiting with the conventional 128+signum status.
  fbt::serve::GracefulShutdown shutdown([](int sig) {
    std::fprintf(stderr, "[bench_seed_search] caught signal %d, flushing report\n",
                 sig);
    fbt::obs::write_bench_report("seed_search", {{"interrupted", "yes"}});
    std::_Exit(fbt::serve::GracefulShutdown::exit_status(sig));
  });

  fbt::Timer total;
  const fbt::Netlist nl = fbt::load_benchmark(target_name);
  std::printf("[bench_seed_search] target=%s gates=%zu seeds=%zu L=%zu\n",
              target_name.c_str(), nl.num_gates(), num_seeds, length);

  fbt::Pcg32 rng(0x5eed5eedULL, 42);
  std::vector<std::uint32_t> seeds(num_seeds);
  for (auto& s : seeds) s = rng.next() | 1u;

  fbt::FunctionalBistConfig base;
  base.segment_length = length;
  base.rng_seed = 7;

  // Scenario 1: rejected-candidate evaluation. A tight SWA bound makes
  // (nearly) every candidate violate and be trimmed -- the cost profile of
  // the R consecutive failures the construction loop pays per accepted
  // segment.
  fbt::FunctionalBistConfig rejected = base;
  rejected.bounded = true;
  rejected.swa_bound_percent = 15.0;
  const ThroughputResult rej =
      measure_throughput(nl, rejected, seeds, repeats);

  // Scenario 2: full-length evaluation (no bound): every lane simulates all
  // L cycles, the packed engine's steady-state throughput.
  fbt::FunctionalBistConfig full = base;
  full.bounded = false;
  const ThroughputResult fl = measure_throughput(nl, full, seeds, repeats);

  // Scenario 3: end-to-end construction, speculation off vs on.
  const fbt::TransitionFaultList faults =
      fbt::TransitionFaultList::collapsed(nl);
  fbt::FunctionalBistConfig e2e = base;
  e2e.bounded = true;
  e2e.swa_bound_percent = 35.0;
  e2e.max_segment_failures = 3;
  e2e.max_sequence_failures = 2;
  double run_ms[2] = {0.0, 0.0};
  fbt::FunctionalBistResult run_out[2];
  std::vector<std::uint32_t> run_det[2];
  const std::size_t widths[2] = {1, 64};
  for (int w = 0; w < 2; ++w) {
    fbt::FunctionalBistConfig c = e2e;
    c.speculation_lanes = widths[w];
    fbt::FunctionalBistGenerator gen(nl, c);
    run_det[w].assign(faults.size(), 0);
    fbt::Timer t;
    run_out[w] = gen.run(faults, run_det[w]);
    run_ms[w] = t.ms();
  }
  const bool run_identical =
      run_out[0].num_seeds == run_out[1].num_seeds &&
      run_out[0].num_tests == run_out[1].num_tests &&
      run_out[0].peak_swa == run_out[1].peak_swa &&
      run_det[0] == run_det[1];
  const double run_speedup = run_ms[1] > 0 ? run_ms[0] / run_ms[1] : 0.0;

  fbt::Table table("Candidate-seed search (" + target_name + ", " +
                   std::to_string(num_seeds) + " seeds, L=" +
                   std::to_string(length) + ")");
  table.set_header({"scenario", "scalar ms", "packed ms", "speedup",
                    "identical"});
  table.add_row({"rejected (tight bound)", fbt::Table::num(rej.scalar_ms, 2),
                 fbt::Table::num(rej.packed_ms, 2),
                 fbt::Table::num(rej.speedup(), 2),
                 rej.identical ? "yes" : "NO"});
  table.add_row({"full-length (no bound)", fbt::Table::num(fl.scalar_ms, 2),
                 fbt::Table::num(fl.packed_ms, 2),
                 fbt::Table::num(fl.speedup(), 2),
                 fl.identical ? "yes" : "NO"});
  table.add_row({"end-to-end construct", fbt::Table::num(run_ms[0], 2),
                 fbt::Table::num(run_ms[1], 2),
                 fbt::Table::num(run_speedup, 2),
                 run_identical ? "yes" : "NO"});
  table.print();

  FBT_OBS_GAUGE_SET("bist.seed_search_rejected_speedup", rej.speedup());
  FBT_OBS_GAUGE_SET("bist.seed_search_full_speedup", fl.speedup());
  FBT_OBS_GAUGE_SET("bist.seed_search_e2e_speedup", run_speedup);
  FBT_OBS_GAUGE_SET("bist.seed_search_scalar_ms", rej.scalar_ms);
  FBT_OBS_GAUGE_SET("bist.seed_search_packed_ms", rej.packed_ms);

  const bool all_identical = rej.identical && fl.identical && run_identical;
  std::printf("[bench_seed_search] identical=%s done in %s\n",
              all_identical ? "yes" : "NO", total.pretty().c_str());

  fbt::obs::write_bench_report(
      "seed_search",
      {{"target", target_name},
       {"seeds", std::to_string(num_seeds)},
       {"length", std::to_string(length)},
       {"repeats", std::to_string(repeats)},
       {"rejected_speedup", fbt::Table::num(rej.speedup(), 2)},
       {"full_speedup", fbt::Table::num(fl.speedup(), 2)},
       {"e2e_speedup", fbt::Table::num(run_speedup, 2)},
       {"identical", all_identical ? "yes" : "no"}});
  return all_identical ? 0 : 1;
}
