// Reproduces dissertation Table 4.3: built-in generation of functional
// broadside tests considering primary input constraints.
//
// For every target circuit three rows are produced: the unconstrained
// "buffers" driving block and two constrained driving blocks (chosen as in
// the dissertation where the registry permits: the driving block's output
// count must cover the target's input count). Each row reports the scan
// length Lsc, the number of multi-segment primary input sequences N_multi,
// the largest segment count N_segmax, the longest segment L_max, the
// calibrated bound SWA_func, the number of LFSR seeds, the number of applied
// tests, the peak switching activity during application, the transition
// fault coverage, and the hardware cost of the on-chip generator.
//
// Scaled defaults (dissertation: L = 6000-18000, 30 calibration sequences of
// 30000 cycles): --L, --calib-seqs, --calib-len, --targets to adjust.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "flow/bist_flow.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct Row {
  const char* target;
  const char* driver;
};

// Target + driving-block pairs following Table 4.3 (buffers row first; the
// dissertation's des_area/des_area self-pairing is replaced by s35932e since
// des_area has fewer outputs than inputs).
const Row kRows[] = {
    {"s35932e", "buffers"},   {"s35932e", "aes_core"}, {"s35932e", "spi"},
    {"s38584e", "buffers"},   {"s38584e", "des_area"}, {"s38584e", "wb_conmax"},
    {"b14", "buffers"},       {"b14", "systemcdes"},   {"b14", "aes_core"},
    {"b20", "buffers"},       {"b20", "aes_core"},     {"b20", "spi"},
    {"spi", "buffers"},       {"spi", "wb_conmax"},    {"spi", "wb_dma"},
    {"wb_dma", "buffers"},    {"wb_dma", "wb_conmax"}, {"wb_dma", "s35932e"},
    {"systemcaes", "buffers"},{"systemcaes", "wb_conmax"},
    {"systemcaes", "s35932e"},
    {"systemcdes", "buffers"},{"systemcdes", "wb_dma"},
    {"systemcdes", "s38584e"},
    {"des_area", "buffers"},  {"des_area", "wb_conmax"},
    {"des_area", "s35932e"},
    {"aes_core", "buffers"},  {"aes_core", "wb_conmax"},
    {"aes_core", "s35932e"},
    {"wb_conmax", "buffers"}, {"wb_conmax", "wb_conmax"},
    {"des_perf", "buffers"},  {"des_perf", "wb_conmax"},
    {"des_perf", "s38584e"},
};

std::string display(const std::string& name) {
  if (name == "s35932e") return "s35932";
  if (name == "s38584e") return "s38584";
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const auto L = static_cast<std::size_t>(cli.get_int("L", 768));
  const auto calib_seqs =
      static_cast<std::size_t>(cli.get_int("calib-seqs", 6));
  const auto calib_len =
      static_cast<std::size_t>(cli.get_int("calib-len", 1500));
  const std::string only = cli.get("targets", "");

  fbt::Timer total;
  fbt::Table table(
      "Table 4.3: Built-in test generation considering primary input "
      "constraints");
  table.set_header({"Circuit", "Lsc", "Driving block", "Nmulti", "Nsegmax",
                    "Lmax", "SWAfunc%", "Nseeds", "Ntests", "SWA%", "FC%",
                    "HW Area", "Over.%"});

  std::string last_target;
  for (const Row& row : kRows) {
    if (!only.empty() &&
        only.find(display(row.target)) == std::string::npos) {
      continue;
    }
    fbt::Timer timer;
    fbt::BistExperimentConfig cfg;
    cfg.target_name = row.target;
    cfg.driver_name = row.driver;
    cfg.calibration.num_sequences = calib_seqs;
    cfg.calibration.sequence_length = calib_len;
    cfg.generation.segment_length = L;
    cfg.generation.max_segment_failures = 3;  // R
    cfg.generation.max_sequence_failures = 3; // Q (dissertation: 5)
    cfg.generation.rng_seed = 0x51de0u ^ std::hash<std::string>{}(
                                             std::string(row.target) +
                                             row.driver);
    const fbt::BistExperimentResult r = fbt::run_bist_experiment(cfg);

    const bool first_of_target = last_target != row.target;
    last_target = row.target;
    table.add_row({first_of_target ? display(row.target) : "",
                   first_of_target
                       ? std::to_string(r.scan.longest_length())
                       : "",
                   display(row.driver), std::to_string(r.run.sequences.size()),
                   std::to_string(r.run.nseg_max), std::to_string(r.run.lmax),
                   fbt::Table::num(r.swa_func, 2),
                   std::to_string(r.run.num_seeds),
                   std::to_string(r.run.num_tests),
                   fbt::Table::num(r.run.peak_swa, 2),
                   fbt::Table::num(r.fault_coverage_percent, 2),
                   std::to_string(static_cast<long long>(r.hw_area)),
                   fbt::Table::num(r.overhead_percent, 2)});
    std::fprintf(stderr, "[table4_3] %s / %s done in %s\n",
                 display(row.target).c_str(), row.driver, timer.pretty().c_str());
  }
  table.print();
  std::printf("[bench_table4_3] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "table4_3",
      {{"L", std::to_string(L)},
       {"calib-seqs", std::to_string(calib_seqs)},
       {"calib-len", std::to_string(calib_len)},
       {"targets", only}});
  return 0;
}
