// Reproduces dissertation Tables 3.2 and 3.3.
//   Table 3.2  Target_PDF size before ("original") and after ("final") the
//              INA-based delay recalculation and expansion, for a sweep of
//              requested selection sizes N.
//   Table 3.3  number of path delay faults unique to the INA-based
//              selection's top-N versus the traditional top-N.
// Scaled defaults: the dissertation sweeps N = 100..1000 on 8 circuits; here
// N defaults to {25, 50, 100, 150} (flag --Ns) on four circuits (--circuits).
#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "sta/path_selection.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

std::vector<std::size_t> parse_sizes(const std::string& text) {
  std::vector<std::size_t> sizes;
  std::stringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    sizes.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::vector<std::size_t> sizes =
      parse_sizes(cli.get("Ns", "25,50,100,150"));
  std::vector<std::string> circuits = {"s1423", "s5378", "b11", "b12"};
  if (cli.has("circuits")) {
    circuits.clear();
    std::stringstream in(cli.get("circuits", ""));
    std::string item;
    while (std::getline(in, item, ',')) circuits.push_back(item);
  }

  fbt::Timer total;
  std::vector<std::string> header{"Circuit", "set"};
  for (const std::size_t n : sizes) header.push_back(std::to_string(n));
  fbt::Table t32("Table 3.2: Path group size comparison");
  t32.set_header(header);
  std::vector<std::string> header33{"Circuit"};
  for (const std::size_t n : sizes) header33.push_back(std::to_string(n));
  fbt::Table t33("Table 3.3: Number of different path delay faults");
  t33.set_header(header33);

  for (const std::string& name : circuits) {
    fbt::Timer timer;
    const fbt::Netlist nl = fbt::load_benchmark(name);
    std::vector<std::string> original_row{name, "original"};
    std::vector<std::string> final_row{"", "final"};
    std::vector<std::string> diff_row{name};
    for (const std::size_t n : sizes) {
      fbt::PathSelectionConfig cfg;
      cfg.num_target = n;
      cfg.initial_pool = 10 * n;
      cfg.expansion_cap = 16;
      cfg.max_processed = 3 * n;
      const fbt::PathSelectionResult result = fbt::select_critical_paths(
          nl, fbt::DelayLibrary::standard_018um(), cfg);
      original_row.push_back(std::to_string(result.original_size));
      final_row.push_back(std::to_string(result.final_size));

      // Table 3.3: top-N of the final (INA-ranked) selection vs. the
      // traditional top-N (the first original_size faults, which were ranked
      // by traditional delay). Count faults unique to the INA-based set.
      std::set<std::string> traditional;
      std::size_t taken = 0;
      // Reconstruct the traditional top-N: the non-newly-added faults in
      // original-delay order.
      std::vector<const fbt::SelectedPathFault*> trad_sorted;
      for (const auto& sel : result.target) {
        if (!sel.newly_added) trad_sorted.push_back(&sel);
      }
      std::sort(trad_sorted.begin(), trad_sorted.end(),
                [](const auto* a, const auto* b) {
                  return a->original_delay > b->original_delay;
                });
      for (const auto* sel : trad_sorted) {
        if (taken++ >= n) break;
        traditional.insert(fbt::path_fault_key(sel->fault));
      }
      std::size_t unique_to_new = 0;
      std::size_t counted = 0;
      for (const auto& sel : result.target) {  // already final-delay sorted
        if (counted++ >= n) break;
        if (!traditional.count(fbt::path_fault_key(sel.fault))) {
          ++unique_to_new;
        }
      }
      diff_row.push_back(std::to_string(unique_to_new));
    }
    t32.add_row(original_row);
    t32.add_row(final_row);
    t33.add_row(diff_row);
    std::fprintf(stderr, "[table3_2_3] %s done in %s\n", name.c_str(),
                 timer.pretty().c_str());
  }
  t32.print();
  std::printf("\n");
  t33.print();
  std::printf("[bench_table3_2_3] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "table3_2_3",
      {{"Ns", cli.get("Ns", "25,50,100,150")},
       {"circuits", cli.get("circuits", "")}});
  return 0;
}
