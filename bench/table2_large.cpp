// Reproduces dissertation Tables 2.2, 2.4, and 2.6: transition path delay
// fault test generation on the larger circuits, targeting faults from the
// longest paths downward until at least a target number of detected faults
// is reached (the dissertation uses 1000 and spends hours to days per
// circuit; scaled default 60 under a per-circuit wall-clock budget,
// flags --target-detected / --budget-seconds / --max-faults).
#include <cstdio>
#include <string>
#include <vector>

#include "atpg/tpdf_engine.hpp"
#include "circuits/registry.hpp"
#include "paths/path.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const auto target_detected =
      static_cast<std::size_t>(cli.get_int("target-detected", 60));
  const auto batch = static_cast<std::size_t>(cli.get_int("batch", 150));
  const auto max_faults =
      static_cast<std::size_t>(cli.get_int("max-faults", 2400));
  const double budget = cli.get_double("budget-seconds", 75.0);
  const std::string only = cli.get("circuits", "");
  const std::vector<std::string> circuits = {"s1423", "s5378", "s9234",
                                             "s13207"};

  fbt::Timer total;
  fbt::Table t22("Table 2.2: Results of test generation (at least " +
                 std::to_string(target_detected) + " det. faults)");
  t22.set_header({"Circuit", "No. of faults", "No. of Det.", "No. of Undet.",
                  "No. of Abr.", "Run time"});
  fbt::Table t24("Table 2.4: Number of detected faults for sub-procedures");
  t24.set_header({"Circuit", "Prep. Proc.", "FSim Proc.", "Heur. Proc.",
                  "Bran. Proc."});
  fbt::Table t26("Table 2.6: Run time comparison of sub-procedures");
  t26.set_header({"Circuit", "TG for Tran.", "Prep. Proc.", "FSim Proc.",
                  "Heur. Proc.", "Bran. Proc."});

  for (const std::string& name : circuits) {
    if (!only.empty() && only.find(name) == std::string::npos) continue;
    fbt::Timer timer;
    const fbt::Netlist nl = fbt::load_benchmark(name);

    fbt::TpdfEngineConfig cfg;
    cfg.rng_seed = 7;
    cfg.tf_atpg.backtrack_limit = 64;
    cfg.tf_atpg.time_limit_seconds = 0.01;
    cfg.heuristic.time_limit_seconds = 0.02;
    cfg.heuristic.backtrack_limit = 150;
    cfg.heuristic_attempts = 1;
    cfg.branch_and_bound.time_limit_seconds = 0.15;
    cfg.branch_and_bound.backtrack_limit = 1500;
    fbt::TpdfEngine engine(nl, cfg);
    fbt::LongestPathEnumerator longest(nl);

    fbt::TpdfRunReport sum;
    while (sum.detected < target_detected && sum.num_faults < max_faults &&
           timer.seconds() < budget) {
      std::vector<fbt::PathDelayFault> faults;
      while (faults.size() < 2 * batch) {
        fbt::Path p = longest.next();
        if (p.nodes.empty()) break;
        faults.push_back({p, true});
        faults.push_back({std::move(p), false});
      }
      if (faults.empty()) break;
      const fbt::TpdfRunReport r = engine.run(faults);
      sum.num_faults += r.num_faults;
      sum.detected += r.detected;
      sum.undetectable += r.undetectable;
      sum.aborted += r.aborted;
      sum.detectable_upper_bound += r.detectable_upper_bound;
      sum.detected_fsim += r.detected_fsim;
      sum.detected_heuristic += r.detected_heuristic;
      sum.detected_bnb += r.detected_bnb;
      sum.seconds_tf_atpg += r.seconds_tf_atpg;
      sum.seconds_preprocessing += r.seconds_preprocessing;
      sum.seconds_fsim += r.seconds_fsim;
      sum.seconds_heuristic += r.seconds_heuristic;
      sum.seconds_bnb += r.seconds_bnb;
    }

    t22.add_row({name, std::to_string(sum.num_faults),
                 std::to_string(sum.detected),
                 std::to_string(sum.undetectable),
                 std::to_string(sum.aborted), timer.pretty()});
    t24.add_row({name, std::to_string(sum.detectable_upper_bound),
                 std::to_string(sum.detected_fsim),
                 std::to_string(sum.detected_heuristic),
                 std::to_string(sum.detected_bnb)});
    t26.add_row({name, fbt::Timer::format_duration(sum.seconds_tf_atpg),
                 fbt::Timer::format_duration(sum.seconds_preprocessing),
                 fbt::Timer::format_duration(sum.seconds_fsim),
                 fbt::Timer::format_duration(sum.seconds_heuristic),
                 fbt::Timer::format_duration(sum.seconds_bnb)});
    std::fprintf(stderr, "[table2_large] %s done in %s\n", name.c_str(),
                 timer.pretty().c_str());
  }
  t22.print();
  std::printf("\n");
  t24.print();
  std::printf("\n");
  t26.print();
  std::printf("[bench_table2_2_4_6] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "table2_2_4_6",
      {{"target-detected", std::to_string(target_detected)},
       {"batch", std::to_string(batch)},
       {"max-faults", std::to_string(max_faults)},
       {"budget-seconds", std::to_string(budget)},
       {"circuits", only}});
  return 0;
}
