// Serving-path bench: cold-vs-warm latency and concurrent throughput of the
// in-process ExperimentService (the same core the fbt_serve daemon wraps).
//
// The experiment is calibration-heavy (12 x 2048-cycle SWA sequences) so the
// cold path has real work to amortize; the warm path is an experiment-key
// cache hit that re-renders the stored summary. The bench asserts the warm
// summary is bit-identical to both the cold run and a batch
// run_bist_experiment of the same config (detect-count and first-detect
// fingerprints), then times 4 client threads multiplexing warm requests over
// the one shared pool.
//
// Gauges recorded into BENCH_serve.json (gated by `fbt_report diff
// --min-warm-speedup` in CI):
//   serve.cold_ms          first-request latency (cache miss, full flow)
//   serve.warm_ms          mean repeat-request latency (cache hit)
//   serve.warm_speedup     cold_ms / warm_ms
//   serve.concurrent_rps   warm requests/sec across 4 concurrent clients
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "flow/bist_flow.hpp"
#include "jobs/job_system.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string target = cli.get("target", "s298");
  const std::size_t warm_repeats =
      static_cast<std::size_t>(cli.get_int("warm-repeats", 64));
  const std::size_t clients =
      static_cast<std::size_t>(cli.get_int("clients", 4));
  const std::size_t requests_per_client =
      static_cast<std::size_t>(cli.get_int("requests-per-client", 128));

  fbt::serve::ExperimentRequest request;
  request.target = target;
  request.driver = "buffers";
  request.config.target_name = target;
  request.config.driver_name = "buffers";
  request.config.calibration.num_sequences = 12;
  request.config.calibration.sequence_length = 2048;
  request.config.generation.segment_length = 200;
  request.config.generation.max_segment_failures = 2;
  request.config.generation.max_sequence_failures = 2;
  request.config.generation.rng_seed = 19;

  // The container may report a single core; the serving pool is explicitly
  // sized so steal/multiplex behaviour is exercised regardless.
  fbt::jobs::JobSystem jobs(4);
  fbt::serve::ArtifactCache cache;
  fbt::serve::ExperimentService service(jobs, cache);

  bool hit = false;
  fbt::Timer cold_timer;
  const fbt::serve::ExperimentSummary cold =
      service.run_experiment(request, &hit);
  const double cold_ms = cold_timer.ms();
  if (hit) {
    std::fprintf(stderr, "bench_serve: first request unexpectedly hit\n");
    return 1;
  }

  fbt::Timer warm_timer;
  fbt::serve::ExperimentSummary warm;
  for (std::size_t i = 0; i < warm_repeats; ++i) {
    warm = service.run_experiment(request, &hit);
    if (!hit) {
      std::fprintf(stderr, "bench_serve: warm request missed\n");
      return 1;
    }
  }
  const double warm_ms = warm_timer.ms() / static_cast<double>(warm_repeats);
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

  // Identity: warm hit vs cold miss vs the batch CLI path, by fingerprint.
  const fbt::BistExperimentResult batch =
      fbt::run_bist_experiment(request.config);
  const std::string cold_detect =
      fbt::serve::hash_detect_counts(cold.detect_count);
  const std::string cold_first =
      fbt::serve::hash_first_detects(cold.first_detect);
  const bool identical =
      cold_detect == fbt::serve::hash_detect_counts(warm.detect_count) &&
      cold_detect == fbt::serve::hash_detect_counts(batch.detect_count) &&
      cold_first == fbt::serve::hash_first_detects(warm.first_detect) &&
      cold_first == fbt::serve::hash_first_detects(batch.run.first_detect);
  if (!identical) {
    std::fprintf(stderr,
                 "bench_serve: warm/cold/batch results are NOT identical\n");
  }

  // Concurrent warm throughput: several client threads hammer the service;
  // they share the pool and the cache, so this measures multiplexing
  // overhead, not flow work.
  fbt::Timer rps_timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&service, &request, requests_per_client] {
      bool h = false;
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        (void)service.run_experiment(request, &h);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double rps_elapsed_s = rps_timer.ms() / 1000.0;
  const double rps =
      rps_elapsed_s > 0.0
          ? static_cast<double>(clients * requests_per_client) / rps_elapsed_s
          : 0.0;

  fbt::obs::MetricsRegistry& reg = fbt::obs::registry();
  reg.gauge("serve.cold_ms").set(cold_ms);
  reg.gauge("serve.warm_ms").set(warm_ms);
  reg.gauge("serve.warm_speedup").set(speedup);
  reg.gauge("serve.concurrent_rps").set(rps);

  std::printf(
      "serve: %s cold %.2f ms, warm %.4f ms (%.0fx), %.0f req/s over %zu "
      "clients, identical=%s\n",
      target.c_str(), cold_ms, warm_ms, speedup, rps, clients,
      identical ? "yes" : "NO");

  fbt::obs::write_bench_report(
      "serve", {{"target", target}, {"identical", identical ? "yes" : "no"}});
  return identical ? 0 : 1;
}
