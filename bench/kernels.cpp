// Microbenchmarks (google-benchmark) for the simulation kernels that
// dominate every experiment: bit-parallel evaluation, event-driven fault
// propagation, scalar sequential stepping, cube simulation, and the on-chip
// TPG. Also quantifies the bit-parallel vs scalar design decision called out
// in DESIGN.md.
#include <benchmark/benchmark.h>

#include "bist/lfsr.hpp"
#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "fault/fault_sim.hpp"
#include "sim/bitsim.hpp"
#include "sim/cubesim.hpp"
#include "sim/seqsim.hpp"
#include "util/rng.hpp"

namespace {

const fbt::Netlist& circuit() {
  static const fbt::Netlist nl = fbt::load_benchmark("s5378");
  return nl;
}

void BM_BitSimEval64(benchmark::State& state) {
  const fbt::Netlist& nl = circuit();
  fbt::BitSim sim(nl);
  fbt::Pcg32 rng(1);
  for (const fbt::NodeId pi : nl.inputs()) sim.set_value(pi, rng.next64());
  for (const fbt::NodeId ff : nl.flops()) sim.set_value(ff, rng.next64());
  for (auto _ : state) {
    sim.eval();
    benchmark::DoNotOptimize(sim.value(nl.outputs()[0]));
  }
  state.SetItemsProcessed(state.iterations() * 64);  // patterns per eval
}
BENCHMARK(BM_BitSimEval64);

void BM_SeqSimStep(benchmark::State& state) {
  const fbt::Netlist& nl = circuit();
  fbt::SeqSim sim(nl);
  sim.load_reset_state();
  std::vector<std::uint8_t> pi(nl.num_inputs(), 0);
  fbt::Pcg32 rng(2);
  for (auto _ : state) {
    for (auto& b : pi) b = rng.chance(1, 2);
    benchmark::DoNotOptimize(sim.step(pi).toggled_lines);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqSimStep);

void BM_FaultPropagate(benchmark::State& state) {
  const fbt::Netlist& nl = circuit();
  fbt::BitSim sim(nl);
  fbt::Pcg32 rng(3);
  for (const fbt::NodeId pi : nl.inputs()) sim.set_value(pi, rng.next64());
  for (const fbt::NodeId ff : nl.flops()) sim.set_value(ff, rng.next64());
  sim.eval();
  for (auto _ : state) {
    const auto site = static_cast<fbt::NodeId>(
        rng.below(static_cast<std::uint32_t>(nl.size())));
    benchmark::DoNotOptimize(sim.fault_propagate(site, rng.next64()));
  }
}
BENCHMARK(BM_FaultPropagate);

void BM_GradeRandomTests(benchmark::State& state) {
  const fbt::Netlist& nl = circuit();
  const fbt::TransitionFaultList faults =
      fbt::TransitionFaultList::collapsed(nl);
  fbt::BroadsideFaultSim fsim(nl);
  fbt::Pcg32 rng(4);
  fbt::TestSet tests;
  for (int i = 0; i < 256; ++i) {
    fbt::BroadsideTest t;
    for (std::size_t k = 0; k < nl.num_flops(); ++k) {
      t.scan_state.push_back(rng.chance(1, 2));
    }
    for (std::size_t k = 0; k < nl.num_inputs(); ++k) {
      t.v1.push_back(rng.chance(1, 2));
      t.v2.push_back(rng.chance(1, 2));
    }
    tests.push_back(std::move(t));
  }
  for (auto _ : state) {
    std::vector<std::uint32_t> detect(faults.size(), 0);
    benchmark::DoNotOptimize(fsim.grade(tests, faults, detect, 1));
  }
  state.SetItemsProcessed(state.iterations() * tests.size());
}
BENCHMARK(BM_GradeRandomTests);

void BM_CubeSimEval(benchmark::State& state) {
  const fbt::Netlist& nl = circuit();
  fbt::CubeSim sim(nl);
  sim.clear();
  sim.set_value(nl.inputs()[0], fbt::Val3::k1);
  for (auto _ : state) {
    sim.eval();
    benchmark::DoNotOptimize(sim.specified_next_state_count());
  }
}
BENCHMARK(BM_CubeSimEval);

void BM_TpgNextVector(benchmark::State& state) {
  const fbt::Netlist& nl = circuit();
  fbt::Tpg tpg(nl, {});
  tpg.reseed(0x1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tpg.next_vector());
  }
}
BENCHMARK(BM_TpgNextVector);

void BM_LfsrStep(benchmark::State& state) {
  fbt::Lfsr lfsr(32);
  lfsr.seed(0xcafe);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lfsr.step());
  }
}
BENCHMARK(BM_LfsrStep);

}  // namespace
