// Extension bench (dissertation §5.1 future work): built-in functional test
// generation for a circuit with two clock domains.
//
// The slow domain ticks once every `divider` fast cycles. Functional
// stimulus is applied with both clocks at their own rates (reachable states
// of the composite machine), multi-cycle tests are cut out of the
// trajectory, and coverage is reported per fault span class (intra-fast /
// intra-slow / crossing). A naive single-clock treatment (pretending every
// flop is fast) is graded on the same faults for contrast: it overtests --
// its "detections" of slow-domain faults rely on state transitions the
// composite machine cannot perform.
#include <cstdio>
#include <string>
#include <vector>

#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "fault/fault_sim.hpp"
#include "multiclock/multiclock_sim.hpp"
#include "sim/seqsim.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string name = cli.get("circuit", "s298");
  const auto divider = static_cast<unsigned>(cli.get_int("divider", 4));
  const auto slow_pct = static_cast<unsigned>(cli.get_int("slow-percent", 40));
  const auto cycles = static_cast<std::size_t>(cli.get_int("cycles", 3000));
  fbt::Timer total;

  const fbt::Netlist nl = fbt::load_benchmark(name);
  const fbt::ClockDomains domains =
      fbt::ClockDomains::split_by_index(nl, slow_pct, divider);
  const fbt::TransitionFaultList faults =
      fbt::TransitionFaultList::collapsed(nl);

  std::printf("circuit %s: %zu flops (%zu slow, divider %u)\n", name.c_str(),
              nl.num_flops(), domains.num_slow(), divider);

  // Functional stimulus.
  fbt::Tpg tpg(nl, {});
  tpg.reseed(0xc10c);
  std::vector<std::vector<std::uint8_t>> vectors;
  for (std::size_t c = 0; c < cycles; ++c) {
    vectors.push_back(tpg.next_vector());
  }
  const std::vector<std::uint8_t> reset(nl.num_flops(), 0);

  // Proper multi-clock testing: multi-cycle tests on the composite machine.
  const auto tests =
      fbt::extract_multicycle_tests(domains, reset, vectors, 2 * divider);
  fbt::MultiClockFaultSim fsim(domains);
  std::vector<std::uint32_t> det(faults.size(), 0);
  fsim.grade(tests, faults, det);

  // Naive single-clock treatment of the same circuit (every flop fast).
  std::vector<std::uint32_t> naive(faults.size(), 0);
  {
    fbt::BroadsideFaultSim bsim(nl);
    fbt::SeqSim sim(nl);
    sim.load_reset_state();
    fbt::TestSet broadside;
    std::vector<std::uint8_t> launch;
    for (std::size_t c = 0; c + 1 < vectors.size(); c += 2) {
      launch = sim.state();
      sim.step(vectors[c]);
      broadside.push_back(fbt::BroadsideTest{launch, vectors[c],
                                             vectors[c + 1], {}});
      sim.step(vectors[c + 1]);
    }
    bsim.grade(broadside, faults, naive, 1);
  }

  fbt::Table table("Multi-clock extension: coverage by fault span (" +
                   std::to_string(tests.size()) + " multi-cycle tests)");
  table.set_header({"Fault span", "Faults", "Detected (multi-clock)", "FC%",
                    "\"Detected\" (naive 1-clock)"});
  const char* span_names[] = {"intra-fast", "intra-slow", "crossing"};
  std::size_t count[3] = {0, 0, 0};
  std::size_t hit[3] = {0, 0, 0};
  std::size_t naive_hit[3] = {0, 0, 0};
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const auto span =
        static_cast<std::size_t>(domains.classify(faults.fault(f).line));
    ++count[span];
    if (det[f] >= 1) ++hit[span];
    if (naive[f] >= 1) ++naive_hit[span];
  }
  for (int s = 0; s < 3; ++s) {
    table.add_row({span_names[s], std::to_string(count[s]),
                   std::to_string(hit[s]),
                   count[s] == 0
                       ? "-"
                       : fbt::Table::num(100.0 * hit[s] / count[s], 1),
                   std::to_string(naive_hit[s])});
  }
  table.print();
  std::printf(
      "Naive single-clock grading credits detections that rely on state\n"
      "transitions the composite machine cannot make (overtesting); the\n"
      "multi-clock columns are the trustworthy ones.\n");
  std::printf("[bench_multiclock] done in %s\n", total.pretty().c_str());
  fbt::obs::write_bench_report(
      "multiclock",
      {{"circuit", name},
       {"divider", std::to_string(divider)},
       {"slow-percent", std::to_string(slow_pct)},
       {"cycles", std::to_string(cycles)}});
  return 0;
}
