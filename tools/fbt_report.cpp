// fbt_report: offline rendering and regression gating for run reports.
//
//   fbt_report render <report.json> [--journal <f.ndjson>] [--out <f.html>]
//       Renders the report (plus the optional event journal) into a
//       self-contained HTML dashboard. Default output: <report>.html.
//
//   fbt_report diff <baseline.json> <current.json>
//              [--max-coverage-drop <pts>] [--max-tests-increase <pct>]
//              [--max-walltime-increase <pct>] [--max-peak-rss-increase <pct>]
//              [--max-bytes-per-gate-increase <pct>] [--min-warm-speedup <x>]
//              [--min-pack-speedup <x>] [--max-obs-overhead-pct <pct>]
//       Compares two run reports and exits nonzero when the current report
//       regresses past a threshold. Negative threshold disables the check;
//       walltime and memory gating are off unless requested (walltime and
//       peak RSS are machine-dependent; bytes-per-gate is deterministic and
//       safe to gate tightly).
//
// Exit codes: 0 ok, 1 regression detected, 2 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/report_tools.hpp"
#include "util/cli.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fbt_report: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool load_report(const std::string& path, fbt::obs::JsonValue& out) {
  std::string text;
  if (!read_file(path, text)) return false;
  std::string error;
  if (!fbt::obs::json_parse(text, out, error)) {
    std::fprintf(stderr, "fbt_report: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  if (!out.is_object()) {
    std::fprintf(stderr, "fbt_report: %s: not a JSON object\n", path.c_str());
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: fbt_report render <report.json> [--journal <f.ndjson>] "
      "[--out <f.html>]\n"
      "       fbt_report diff <baseline.json> <current.json> "
      "[--max-coverage-drop <pts>]\n"
      "                  [--max-tests-increase <pct>] "
      "[--max-walltime-increase <pct>]\n"
      "                  [--max-peak-rss-increase <pct>] "
      "[--max-bytes-per-gate-increase <pct>]\n");
  return 2;
}

int cmd_render(const fbt::Cli& cli) {
  if (cli.positional().size() != 2) return usage();
  const std::string report_path = cli.positional()[1];
  fbt::obs::JsonValue report;
  if (!load_report(report_path, report)) return 2;

  std::string journal;
  const std::string journal_path = cli.get("journal", "");
  if (!journal_path.empty() && !read_file(journal_path, journal)) return 2;

  const std::string out_path = cli.get("out", report_path + ".html");
  const std::string html = fbt::obs::render_html_dashboard(report, journal);
  std::ofstream out(out_path, std::ios::binary);
  if (!out || !(out << html)) {
    std::fprintf(stderr, "fbt_report: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("fbt_report: wrote %s\n", out_path.c_str());
  return 0;
}

int cmd_diff(const fbt::Cli& cli) {
  if (cli.positional().size() != 3) return usage();
  fbt::obs::JsonValue baseline;
  fbt::obs::JsonValue current;
  if (!load_report(cli.positional()[1], baseline)) return 2;
  if (!load_report(cli.positional()[2], current)) return 2;

  fbt::obs::DiffThresholds thresholds;
  thresholds.max_coverage_drop =
      cli.get_double("max-coverage-drop", thresholds.max_coverage_drop);
  thresholds.max_tests_increase_percent = cli.get_double(
      "max-tests-increase", thresholds.max_tests_increase_percent);
  thresholds.max_walltime_increase_percent = cli.get_double(
      "max-walltime-increase", thresholds.max_walltime_increase_percent);
  thresholds.max_peak_rss_increase_percent = cli.get_double(
      "max-peak-rss-increase", thresholds.max_peak_rss_increase_percent);
  thresholds.max_bytes_per_gate_increase_percent =
      cli.get_double("max-bytes-per-gate-increase",
                     thresholds.max_bytes_per_gate_increase_percent);
  thresholds.min_warm_speedup =
      cli.get_double("min-warm-speedup", thresholds.min_warm_speedup);
  thresholds.min_pack_speedup =
      cli.get_double("min-pack-speedup", thresholds.min_pack_speedup);
  thresholds.max_obs_overhead_pct =
      cli.get_double("max-obs-overhead-pct", thresholds.max_obs_overhead_pct);

  const fbt::obs::DiffResult result =
      fbt::obs::diff_run_reports(baseline, current, thresholds);
  std::printf("%s", result.summary_text.c_str());
  if (result.regression) {
    for (const std::string& v : result.violations) {
      std::fprintf(stderr, "REGRESSION: %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("no regression\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  if (cli.positional().empty()) return usage();
  const std::string& command = cli.positional()[0];
  if (command == "render") return cmd_render(cli);
  if (command == "diff") return cmd_diff(cli);
  return usage();
}
