// fbt_serve: the long-running experiment daemon and its one-shot client.
//
//   fbt_serve start --socket <path> [--threads N] [--cache-mb M]
//                   [--report <REPORT_serve.json>] [--journal <f.ndjson>]
//       Binds an AF_UNIX socket and serves NDJSON experiment requests until
//       SIGINT/SIGTERM or a {"type":"shutdown"} request. On graceful exit it
//       drains in-flight requests, flushes the NDJSON journal, and writes a
//       schema-v3 run report.
//
//   fbt_serve request --socket <path> --target <name> [--driver <name>]
//                     [--id <id>] [--json <raw request line>]
//                     [--no-progress] [--cal-sequences N] [--cal-length N]
//                     [--segment-length N] [--max-segment-failures N]
//                     [--max-sequence-failures N] [--rng-seed N]
//                     [--num-threads N] [--speculation-lanes N]
//                     [--fault-pack-width N]
//       Connects, sends one experiment request (or the raw --json line),
//       prints every response line, and exits when the result (or an error)
//       arrives. Exit codes: 0 result received, 1 server error, 2 usage/IO.
//
// Protocol details: src/serve/protocol.hpp. Quickstart: README.md.
#include <cstdio>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/event_journal.hpp"
#include "obs/run_report.hpp"
#include "serve/server.hpp"
#include "serve/shutdown.hpp"
#include "util/cli.hpp"

namespace {

int run_start(const fbt::Cli& cli) {
  const std::string socket_path = cli.get("socket", "/tmp/fbt_serve.sock");
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads", 0));
  const std::uint64_t cache_bytes =
      static_cast<std::uint64_t>(cli.get_int("cache-mb", 256)) << 20;
  const std::string report_path = cli.get("report", "REPORT_serve.json");
  const std::string journal_path = cli.get("journal", "JOURNAL_serve.ndjson");

  // Watcher first: its signal mask must be inherited by the pool and the
  // connection threads, so SIGINT/SIGTERM only ever reach sigwait.
  fbt::serve::SocketServer* active_server = nullptr;
  fbt::serve::GracefulShutdown shutdown([&active_server](int sig) {
    std::fprintf(stderr, "fbt_serve: caught signal %d, draining\n", sig);
    if (active_server != nullptr) active_server->request_stop();
  });

  fbt::jobs::JobSystem jobs(threads);
  fbt::serve::ArtifactCache cache(cache_bytes);
  fbt::serve::ExperimentService service(jobs, cache);
  fbt::serve::SocketServer server(service, socket_path);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "fbt_serve: %s\n", error.c_str());
    return 2;
  }
  active_server = &server;
  std::fprintf(stderr, "fbt_serve: listening on %s (%zu workers)\n",
               socket_path.c_str(), jobs.size());
  server.serve_forever();  // joins connection threads = drains in-flight work
  active_server = nullptr;

  // Graceful exit: flush the journal and write the run report.
  const fbt::serve::ArtifactCache::Stats stats = cache.stats();
  fbt::obs::journal().write_ndjson(journal_path);
  fbt::obs::RunReportData report = fbt::obs::collect_run_report(
      "fbt_serve",
      {{"socket", socket_path},
       {"requests_total", std::to_string(service.requests_total())},
       {"cache_hits", std::to_string(stats.hits)},
       {"cache_misses", std::to_string(stats.misses)},
       {"cache_evictions", std::to_string(stats.evictions)}});
  fbt::obs::write_run_report(report_path, report);
  const int sig = shutdown.signal_received();
  std::fprintf(stderr, "fbt_serve: wrote %s, exiting%s\n", report_path.c_str(),
               sig != 0 ? " on signal" : "");
  return 0;
}

std::string build_request_line(const fbt::Cli& cli) {
  if (cli.has("json")) return cli.get("json", "");
  std::string line = "{\"type\": \"experiment\", \"id\": \"" +
                     cli.get("id", "cli") + "\"";
  line += ", \"target\": \"" + cli.get("target", "") + "\"";
  const std::string driver = cli.get("driver", "");
  if (!driver.empty()) line += ", \"driver\": \"" + driver + "\"";
  if (cli.has("no-progress")) line += ", \"stream_progress\": false";
  line += ", \"config\": {";
  line += "\"cal_sequences\": " + std::to_string(cli.get_int("cal-sequences", 4));
  line += ", \"cal_length\": " + std::to_string(cli.get_int("cal-length", 400));
  line += ", \"segment_length\": " +
          std::to_string(cli.get_int("segment-length", 200));
  line += ", \"max_segment_failures\": " +
          std::to_string(cli.get_int("max-segment-failures", 2));
  line += ", \"max_sequence_failures\": " +
          std::to_string(cli.get_int("max-sequence-failures", 2));
  line += ", \"rng_seed\": " + std::to_string(cli.get_int("rng-seed", 19));
  line += ", \"num_threads\": " + std::to_string(cli.get_int("num-threads", 1));
  line += ", \"speculation_lanes\": " +
          std::to_string(cli.get_int("speculation-lanes", 64));
  line += ", \"fault_pack_width\": " +
          std::to_string(cli.get_int("fault-pack-width", 64));
  line += "}}";
  return line;
}

int run_request(const fbt::Cli& cli) {
  const std::string socket_path = cli.get("socket", "/tmp/fbt_serve.sock");
  if (!cli.has("json") && cli.get("target", "").empty()) {
    std::fprintf(stderr, "fbt_serve request: --target or --json required\n");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "fbt_serve: socket path too long\n");
    return 2;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) != 0) {
    std::fprintf(stderr, "fbt_serve: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    if (fd >= 0) ::close(fd);
    return 2;
  }
  std::string line = build_request_line(cli);
  line.push_back('\n');
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent, 0);
    if (n <= 0) {
      std::fprintf(stderr, "fbt_serve: send failed\n");
      ::close(fd);
      return 2;
    }
    sent += static_cast<std::size_t>(n);
  }

  // Print response lines until a terminal one ("result", "error", "pong",
  // "stats", "bye") arrives.
  std::string buffer;
  char chunk[4096];
  int status = 2;
  bool done = false;
  while (!done) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && !done; nl = buffer.find('\n', start)) {
      const std::string response = buffer.substr(start, nl - start);
      start = nl + 1;
      std::printf("%s\n", response.c_str());
      if (response.find("\"type\": \"result\"") != std::string::npos ||
          response.find("\"type\": \"pong\"") != std::string::npos ||
          response.find("\"type\": \"stats\"") != std::string::npos ||
          response.find("\"type\": \"bye\"") != std::string::npos) {
        status = 0;
        done = true;
      } else if (response.find("\"type\": \"error\"") != std::string::npos) {
        status = 1;
        done = true;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: fbt_serve start|request [--socket <path>] ...\n");
    return 2;
  }
  const std::string& mode = cli.positional()[0];
  if (mode == "start") return run_start(cli);
  if (mode == "request") return run_request(cli);
  std::fprintf(stderr, "fbt_serve: unknown mode \"%s\"\n", mode.c_str());
  return 2;
}
