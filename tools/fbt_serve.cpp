// fbt_serve: the long-running experiment daemon and its one-shot client.
//
//   fbt_serve start --socket <path> [--threads N] [--cache-mb M]
//                   [--report <REPORT_serve.json>] [--journal <f.ndjson>]
//                   [--trace <trace.json>]
//       Binds an AF_UNIX socket and serves NDJSON experiment requests until
//       SIGINT/SIGTERM or a {"type":"shutdown"} request. On a signal the
//       service stats are frozen BEFORE the drain starts, so the final
//       `stats` responses and the run report agree (in-flight requests still
//       complete, they just no longer move the published numbers). On
//       graceful exit it drains in-flight requests, flushes the NDJSON
//       journal, writes a schema-v4 run report, and (with --trace) exports
//       the Chrome trace of everything the daemon executed.
//
//   fbt_serve request --socket <path> --target <name> [--driver <name>]
//                     [--id <id>] [--json <raw request line>]
//                     [--no-progress] [--cal-sequences N] [--cal-length N]
//                     [--segment-length N] [--max-segment-failures N]
//                     [--max-sequence-failures N] [--rng-seed N]
//                     [--num-threads N] [--speculation-lanes N]
//                     [--fault-pack-width N]
//       Connects, sends one experiment request (or the raw --json line),
//       prints every response line, and exits when the result (or an error)
//       arrives. Exit codes: 0 result received, 1 server error, 2 usage/IO.
//
//   fbt_serve watch --socket <path> [--interval-ms N] [--iterations N]
//                   [--plain]
//       Polls `stats` every interval and renders a terminal dashboard:
//       req/s, cache hit rate, p50/p99 warm+cold latency with the
//       queue/cache/compute/render decomposition, and worker utilization.
//       --iterations 0 (default) polls until the server goes away; --plain
//       suppresses the ANSI clear-screen so output appends (for logs/CI).
//
// Protocol details: src/serve/protocol.hpp. Quickstart: README.md.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/event_journal.hpp"
#include "obs/json.hpp"
#include "obs/phase.hpp"
#include "obs/run_report.hpp"
#include "serve/server.hpp"
#include "serve/shutdown.hpp"
#include "util/cli.hpp"

namespace {

/// Connects to the daemon's AF_UNIX socket. Returns the fd, or -1 after
/// printing a diagnostic (suppressed when `quiet`).
int connect_to(const std::string& socket_path, bool quiet) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    if (!quiet) std::fprintf(stderr, "fbt_serve: socket path too long\n");
    return -1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) != 0) {
    if (!quiet) {
      std::fprintf(stderr, "fbt_serve: cannot connect to %s: %s\n",
                   socket_path.c_str(), std::strerror(errno));
    }
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends the whole line (newline appended). False on a short write.
bool send_line(int fd, std::string line) {
  line.push_back('\n');
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Receives until one full response line is buffered. False on EOF first.
bool recv_line(int fd, std::string& line) {
  line.clear();
  char chunk[4096];
  while (line.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    line.append(chunk, static_cast<std::size_t>(n));
  }
  line.erase(line.find('\n'));
  return true;
}

int run_start(const fbt::Cli& cli) {
  const std::string socket_path = cli.get("socket", "/tmp/fbt_serve.sock");
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads", 0));
  const std::uint64_t cache_bytes =
      static_cast<std::uint64_t>(cli.get_int("cache-mb", 256)) << 20;
  const std::string report_path = cli.get("report", "REPORT_serve.json");
  const std::string journal_path = cli.get("journal", "JOURNAL_serve.ndjson");
  const std::string trace_path = cli.get("trace", "");

  // Watcher first: its signal mask must be inherited by the pool and the
  // connection threads, so SIGINT/SIGTERM only ever reach sigwait.
  fbt::serve::SocketServer* active_server = nullptr;
  fbt::serve::ExperimentService* active_service = nullptr;
  fbt::serve::GracefulShutdown shutdown(
      [&active_server, &active_service](int sig) {
        std::fprintf(stderr, "fbt_serve: caught signal %d, draining\n", sig);
        // Freeze the published stats before the drain: requests completing
        // during the drain keep flushing into the journal/metrics, but the
        // final `stats` responses and the run report both read this frozen
        // snapshot, so they cannot disagree with each other.
        if (active_service != nullptr) active_service->freeze_stats();
        if (active_server != nullptr) active_server->request_stop();
      });

  fbt::jobs::JobSystem jobs(threads);
  fbt::serve::ArtifactCache cache(cache_bytes);
  fbt::serve::ExperimentService service(jobs, cache);
  fbt::serve::SocketServer server(service, socket_path);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "fbt_serve: %s\n", error.c_str());
    return 2;
  }
  active_server = &server;
  active_service = &service;
  std::fprintf(stderr, "fbt_serve: listening on %s (%zu workers)\n",
               socket_path.c_str(), jobs.size());
  server.serve_forever();  // joins connection threads = drains in-flight work
  active_server = nullptr;
  active_service = nullptr;

  // Graceful exit: flush the journal, write the run report (against the
  // frozen stats when a signal froze them, else the final live values), and
  // optionally export the Chrome trace.
  const fbt::serve::ServiceStats stats = service.stats_snapshot();
  fbt::obs::journal().write_ndjson(journal_path);
  fbt::obs::RunReportData report = fbt::obs::collect_run_report(
      "fbt_serve",
      {{"socket", socket_path},
       {"requests_total", std::to_string(stats.requests_total)},
       {"cache_hits", std::to_string(stats.cache_hits)},
       {"cache_misses", std::to_string(stats.cache_misses)},
       {"cache_evictions", std::to_string(stats.cache_evictions)}});
  fbt::obs::write_run_report(report_path, report);
  if (!trace_path.empty()) {
    const std::string trace = fbt::obs::PhaseTrace::instance().chrome_trace_json();
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(trace.data(), 1, trace.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "fbt_serve: wrote %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "fbt_serve: cannot open %s for writing\n",
                   trace_path.c_str());
    }
  }
  const int sig = shutdown.signal_received();
  std::fprintf(stderr, "fbt_serve: wrote %s, exiting%s\n", report_path.c_str(),
               sig != 0 ? " on signal" : "");
  return 0;
}

std::string build_request_line(const fbt::Cli& cli) {
  if (cli.has("json")) return cli.get("json", "");
  std::string line = "{\"type\": \"experiment\", \"id\": \"" +
                     cli.get("id", "cli") + "\"";
  line += ", \"target\": \"" + cli.get("target", "") + "\"";
  const std::string driver = cli.get("driver", "");
  if (!driver.empty()) line += ", \"driver\": \"" + driver + "\"";
  if (cli.has("no-progress")) line += ", \"stream_progress\": false";
  line += ", \"config\": {";
  line += "\"cal_sequences\": " + std::to_string(cli.get_int("cal-sequences", 4));
  line += ", \"cal_length\": " + std::to_string(cli.get_int("cal-length", 400));
  line += ", \"segment_length\": " +
          std::to_string(cli.get_int("segment-length", 200));
  line += ", \"max_segment_failures\": " +
          std::to_string(cli.get_int("max-segment-failures", 2));
  line += ", \"max_sequence_failures\": " +
          std::to_string(cli.get_int("max-sequence-failures", 2));
  line += ", \"rng_seed\": " + std::to_string(cli.get_int("rng-seed", 19));
  line += ", \"num_threads\": " + std::to_string(cli.get_int("num-threads", 1));
  line += ", \"speculation_lanes\": " +
          std::to_string(cli.get_int("speculation-lanes", 64));
  line += ", \"fault_pack_width\": " +
          std::to_string(cli.get_int("fault-pack-width", 64));
  line += "}}";
  return line;
}

int run_request(const fbt::Cli& cli) {
  const std::string socket_path = cli.get("socket", "/tmp/fbt_serve.sock");
  if (!cli.has("json") && cli.get("target", "").empty()) {
    std::fprintf(stderr, "fbt_serve request: --target or --json required\n");
    return 2;
  }
  const int fd = connect_to(socket_path, /*quiet=*/false);
  if (fd < 0) return 2;
  if (!send_line(fd, build_request_line(cli))) {
    std::fprintf(stderr, "fbt_serve: send failed\n");
    ::close(fd);
    return 2;
  }

  // Print response lines until a terminal one ("result", "error", "pong",
  // "stats", "bye") arrives.
  std::string buffer;
  char chunk[4096];
  int status = 2;
  bool done = false;
  while (!done) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && !done; nl = buffer.find('\n', start)) {
      const std::string response = buffer.substr(start, nl - start);
      start = nl + 1;
      std::printf("%s\n", response.c_str());
      if (response.find("\"type\": \"result\"") != std::string::npos ||
          response.find("\"type\": \"pong\"") != std::string::npos ||
          response.find("\"type\": \"stats\"") != std::string::npos ||
          response.find("\"type\": \"bye\"") != std::string::npos) {
        status = 0;
        done = true;
      } else if (response.find("\"type\": \"error\"") != std::string::npos) {
        status = 1;
        done = true;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  return status;
}

/// doc[section][key] as a number, 0 when absent (tolerates older daemons
/// whose stats line predates the latency/scheduler sections).
double stat_num(const fbt::obs::JsonValue& doc, const char* section,
                const char* key) {
  const fbt::obs::JsonValue* s = doc.find(section);
  if (s == nullptr) return 0.0;
  const fbt::obs::JsonValue* v = s->find(key);
  return v != nullptr ? v->as_number(0.0) : 0.0;
}

/// One latency summary line: count, p50, p99 ("+" marks a clamped p99 --
/// the true tail exceeded the last histogram bucket).
void print_latency(const char* label, const fbt::obs::JsonValue& doc,
                   const char* key) {
  const fbt::obs::JsonValue* lat = doc.find("latency");
  const fbt::obs::JsonValue* l = lat != nullptr ? lat->find(key) : nullptr;
  if (l == nullptr) return;
  const fbt::obs::JsonValue* clamped = l->find("p99_clamped");
  const bool is_clamped =
      clamped != nullptr && clamped->kind == fbt::obs::JsonValue::Kind::kBool &&
      clamped->boolean;
  std::printf("  %-12s %8.0f reqs   p50 %9.3f ms   p99 %9.3f ms%s\n", label,
              l->find("count") != nullptr ? l->find("count")->as_number(0.0)
                                          : 0.0,
              l->find("p50_ms") != nullptr ? l->find("p50_ms")->as_number(0.0)
                                           : 0.0,
              l->find("p99_ms") != nullptr ? l->find("p99_ms")->as_number(0.0)
                                           : 0.0,
              is_clamped ? "+" : "");
}

int run_watch(const fbt::Cli& cli) {
  const std::string socket_path = cli.get("socket", "/tmp/fbt_serve.sock");
  const std::int64_t interval_ms = cli.get_int("interval-ms", 500);
  const std::int64_t iterations = cli.get_int("iterations", 0);
  const bool plain = cli.has("plain");

  double prev_requests = -1.0;
  auto prev_time = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const int fd = connect_to(socket_path, /*quiet=*/i > 0);
    if (fd < 0) {
      if (i == 0) return 2;
      std::printf("fbt_serve watch: server on %s went away\n",
                  socket_path.c_str());
      return 0;
    }
    std::string line;
    const bool ok = send_line(fd, "{\"type\": \"stats\", \"id\": \"watch-" +
                                      std::to_string(i) + "\"}") &&
                    recv_line(fd, line);
    ::close(fd);
    if (!ok) {
      if (i == 0) {
        std::fprintf(stderr, "fbt_serve watch: no stats response\n");
        return 2;
      }
      std::printf("fbt_serve watch: server on %s went away\n",
                  socket_path.c_str());
      return 0;
    }
    fbt::obs::JsonValue doc;
    std::string error;
    if (!fbt::obs::json_parse(line, doc, error)) {
      std::fprintf(stderr, "fbt_serve watch: bad stats line: %s\n",
                   error.c_str());
      return 1;
    }

    const fbt::obs::JsonValue* req = doc.find("requests_total");
    const double requests = req != nullptr ? req->as_number(0.0) : 0.0;
    const auto now = std::chrono::steady_clock::now();
    const double dt_s =
        std::chrono::duration<double>(now - prev_time).count();
    const double rate = prev_requests >= 0.0 && dt_s > 0.0
                            ? (requests - prev_requests) / dt_s
                            : 0.0;
    prev_requests = requests;
    prev_time = now;

    const double hits =
        doc.find("cache_hits") != nullptr
            ? doc.find("cache_hits")->as_number(0.0) : 0.0;
    const double misses =
        doc.find("cache_misses") != nullptr
            ? doc.find("cache_misses")->as_number(0.0) : 0.0;
    const double lookups = hits + misses;

    if (!plain) std::printf("\033[H\033[2J");
    std::printf("fbt_serve watch -- %s\n", socket_path.c_str());
    std::printf("requests:  %.0f total, %.1f req/s\n", requests, rate);
    std::printf("cache:     %.1f%% hit rate (%.0f hits / %.0f misses)\n",
                lookups > 0.0 ? 100.0 * hits / lookups : 0.0, hits, misses);
    std::printf("latency (p99 marked + when clamped to the last bucket):\n");
    print_latency("cold total", doc, "cold");
    print_latency("warm total", doc, "warm");
    print_latency("queue", doc, "queue");
    print_latency("cache", doc, "cache_lookup");
    print_latency("compute", doc, "compute");
    print_latency("render", doc, "render");
    std::printf(
        "scheduler: %.0f workers, %.1f%% utilization, depth %.0f, "
        "%.0f steals\n",
        stat_num(doc, "scheduler", "workers"),
        100.0 * stat_num(doc, "scheduler", "utilization"),
        stat_num(doc, "scheduler", "queue_depth"),
        stat_num(doc, "scheduler", "steals"));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: fbt_serve start|request|watch [--socket <path>] ...\n");
    return 2;
  }
  const std::string& mode = cli.positional()[0];
  if (mode == "start") return run_start(cli);
  if (mode == "request") return run_request(cli);
  if (mode == "watch") return run_watch(cli);
  std::fprintf(stderr, "fbt_serve: unknown mode \"%s\"\n", mode.c_str());
  return 2;
}
