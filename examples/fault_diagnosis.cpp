// Fault diagnosis with the on-chip test set (§4.1's motivation: faults left
// to functional broadside testing matter for failure analysis).
//
// Flow: generate functional broadside tests on-chip, build the fault
// dictionary from them, synthesize the failing-test observation of a
// defective part, and rank the candidate defect sites.
//
// Run: ./build/examples/fault_diagnosis [--circuit s298]
#include <cstdio>

#include "bist/functional_bist.hpp"
#include "circuits/registry.hpp"
#include "fault/diagnosis.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string name = cli.get("circuit", "s298");
  const fbt::Netlist circuit = fbt::load_benchmark(name);

  // 1. On-chip test set.
  fbt::FunctionalBistConfig config;
  config.segment_length = 400;
  config.bounded = false;
  fbt::FunctionalBistGenerator generator(circuit, config);
  const fbt::TransitionFaultList faults =
      fbt::TransitionFaultList::collapsed(circuit);
  std::vector<std::uint32_t> detected(faults.size(), 0);
  const fbt::FunctionalBistResult run = generator.run(faults, detected);
  std::printf("%s: %zu functional broadside tests generated on-chip\n",
              name.c_str(), run.num_tests);

  // 2. Dictionary.
  const fbt::FaultDictionary dictionary(circuit, run.tests, faults);
  std::printf("fault dictionary: %zu faults x %zu tests\n",
              dictionary.num_faults(), dictionary.num_tests());

  // 3. "Defective part": pick a well-detected fault and corrupt its
  //    observation slightly (tester noise).
  fbt::Pcg32 rng(4242);
  std::size_t culprit = faults.size();
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (dictionary.failing_tests(f).size() >= 12) {
      culprit = f;
      break;
    }
  }
  if (culprit == faults.size()) {
    std::printf("no well-detected fault to demonstrate with\n");
    return 0;
  }
  auto observed = dictionary.observation_for(culprit);
  observed[rng.below(static_cast<std::uint32_t>(observed.size()))] ^= 1;
  std::printf("injected defect: %s (%zu failing tests, 1 noisy entry)\n\n",
              fault_name(circuit, faults.fault(culprit)).c_str(),
              dictionary.failing_tests(culprit).size());

  // 4. Diagnose.
  const auto ranked = dictionary.diagnose(observed, 5);
  std::printf("rank  candidate        mispredicted  unexplained  score\n");
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const auto& c = ranked[r];
    std::printf("%-5zu %-16s %-13zu %-12zu %zu%s\n", r + 1,
                fault_name(circuit, faults.fault(c.fault_index)).c_str(),
                c.mispredicted_fail, c.unexplained_fail, c.score,
                c.fault_index == culprit ? "   <-- injected" : "");
  }
  return 0;
}
