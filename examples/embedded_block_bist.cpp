// Embedded-block scenario (dissertation Chapter 4, the paper's headline use
// case): a target circuit sits inside a larger design, its primary inputs
// driven by another block, which constrains the input sequences it can see
// during functional operation.
//
// The flow:
//   1. simulate functional input sequences of the complete design and record
//      the peak switching activity in the target (SWA_func),
//   2. generate functional broadside tests on-chip with every cycle's
//      switching bounded by SWA_func (multi-segment sequences, Fig. 4.9),
//   3. optionally recover coverage with the state-holding DFT (§4.5).
//
// Run: ./build/examples/embedded_block_bist [--target spi --driver wb_dma]
//
// Afterwards the program prints the instrumented phase tree (calibrate /
// construct / grade / reduce / cost / rtl), writes a machine-readable run
// report to embedded_block_bist_report.json, and writes the emitted BIST
// hardware (TPG, controller, MISR, wrapped target) next to it as
// embedded_block_bist_top.v.
#include <cstdio>

#include "circuits/registry.hpp"
#include "flow/bist_flow.hpp"
#include "obs/phase.hpp"
#include "obs/run_report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);

  fbt::BistExperimentConfig config;
  config.target_name = cli.get("target", "spi");
  config.driver_name = cli.get("driver", "wb_dma");
  config.calibration.num_sequences = 6;
  config.calibration.sequence_length = 1500;
  config.generation.segment_length = 768;
  config.generation.max_segment_failures = 3;   // R
  config.generation.max_sequence_failures = 3;  // Q
  // RTL emission needs equal scan chains (the circular shift restores the
  // state only when every chain's length divides Lsc).
  config.scan = fbt::equal_partition_scan_config(
      fbt::benchmark_spec(config.target_name).num_flops);
  config.emit_rtl = true;

  std::printf("target %s embedded behind driving block %s\n",
              config.target_name.c_str(), config.driver_name.c_str());
  fbt::BistExperimentResult result = fbt::run_bist_experiment(config);

  std::printf("calibrated SWA_func = %.2f%% of lines per cycle\n",
              result.swa_func);
  std::printf("constrained generation: %zu multi-segment sequences, "
              "N_segmax %zu, L_max %zu, %zu seeds, %zu tests\n",
              result.run.sequences.size(), result.run.nseg_max,
              result.run.lmax, result.run.num_seeds, result.run.num_tests);
  std::printf("peak SWA during application %.2f%% (bound %.2f%%)\n",
              result.run.peak_swa, result.swa_func);
  std::printf("transition fault coverage %.2f%% (%zu / %zu)\n",
              result.fault_coverage_percent, result.detected,
              result.faults.size());
  std::printf("BIST hardware %.0f um^2 = %.2f%% of the circuit\n",
              result.hw_area, result.overhead_percent);

  if (result.rtl.has_value()) {
    const fbt::RtlInventory& inv = result.rtl->inventory;
    std::printf("emitted RTL: top %s, %zu flops / %zu gates total "
                "(CUT %zu/%zu, TPG SR %zu, MISR %zu, seed ROM %zu x %u)\n",
                result.rtl->top_name.c_str(), inv.total_flops, inv.total_gates,
                inv.cut_flops, inv.cut_gates, inv.shiftreg_flops,
                inv.misr_flops, inv.seed_rom_entries, inv.lfsr_bits);
    const char* rtl_path = "embedded_block_bist_top.v";
    if (std::FILE* f = std::fopen(rtl_path, "w")) {
      std::fwrite(result.rtl->verilog.data(), 1, result.rtl->verilog.size(),
                  f);
      std::fclose(f);
      std::printf("emitted Verilog written to %s\n", rtl_path);
    } else {
      std::printf("could not write %s\n", rtl_path);
    }
  }

  if (cli.has("hold")) {
    std::printf("\nstate-holding DFT phase (hold every 4 cycles):\n");
    fbt::HoldSelectionConfig hold;
    hold.tree_height = 3;
    hold.hold_period_log2 = 2;
    hold.eval = result.generation;
    hold.eval.max_segment_failures = 1;
    hold.eval.max_sequence_failures = 1;
    hold.commit = result.generation;
    const fbt::HoldExperimentResult recovered =
        fbt::run_hold_experiment(result, hold, 7);
    std::printf("  %zu hold sets over %zu state variables\n",
                recovered.hold.selected.size(),
                recovered.hold.total_held_flops);
    std::printf("  coverage %.2f%% -> %.2f%% (+%.2f points)\n",
                result.fault_coverage_percent,
                recovered.final_coverage_percent,
                recovered.coverage_improvement_percent);
  } else {
    std::printf("\n(pass --hold to run the state-holding recovery phase)\n");
  }

  const std::string tree = fbt::obs::PhaseTrace::instance().tree_string();
  if (!tree.empty()) {
    std::printf("\nphase breakdown:\n%s", tree.c_str());
  }
  const char* report_path = "embedded_block_bist_report.json";
  const fbt::obs::RunReportData report = fbt::obs::collect_run_report(
      "embedded_block_bist",
      {{"target", config.target_name}, {"driver", config.driver_name}});
  if (fbt::obs::write_run_report(report_path, report)) {
    std::printf("run report written to %s\n", report_path);
  }
  return 0;
}
