// Critical-path selection with input necessary assignments (dissertation
// Chapter 3): traditional STA ranks paths, INAs prune undetectable ones and
// tighten the delay estimates, and the selection set absorbs paths that are
// at least as critical under the detection conditions.
//
// Run: ./build/examples/critical_path_selection [--circuit s1423 --N 12]
#include <cstdio>

#include "circuits/registry.hpp"
#include "sta/path_selection.hpp"
#include "sta/timing_report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string name = cli.get("circuit", "s1423");
  const auto n = static_cast<std::size_t>(cli.get_int("N", 12));
  const fbt::Netlist circuit = fbt::load_benchmark(name);
  const fbt::DelayLibrary library = fbt::DelayLibrary::standard_018um();

  const fbt::TimingGraph traditional(circuit, library);
  std::printf("%s: worst arrival (traditional STA) = %.3f ns\n", name.c_str(),
              traditional.worst_arrival());
  const fbt::TimingReport timing(circuit, traditional,
                                 1.05 * traditional.worst_arrival());
  std::printf("%s", timing.to_string(2).c_str());

  fbt::PathSelectionConfig config;
  config.num_target = n;
  config.initial_pool = 40 * n;
  const fbt::PathSelectionResult result =
      fbt::select_critical_paths(circuit, library, config);

  std::printf("pool scan dropped %zu undetectable path delay faults;\n"
              "Target_PDF grew %zu -> %zu during INA-based expansion\n\n",
              result.undetectable_dropped, result.original_size,
              result.final_size);
  std::printf("%-4s %-10s %-10s %-5s  path\n", "#", "orig (ns)", "final (ns)",
              "new?");
  std::size_t shown = 0;
  for (const fbt::SelectedPathFault& sel : result.target) {
    if (shown++ >= n) break;
    std::printf("%-4zu %-10.3f %-10.3f %-5s  %s\n", shown,
                sel.original_delay, sel.final_delay,
                sel.newly_added ? "yes" : "-",
                path_fault_name(circuit, sel.fault).c_str());
  }
  return 0;
}
