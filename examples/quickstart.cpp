// Quickstart: built-in generation of functional broadside tests on s27.
//
// Demonstrates the core public API end to end:
//   1. parse a .bench circuit,
//   2. build the on-chip TPG (input cube, LFSR, shift register),
//   3. run the multi-segment construction procedure from the reachable
//      all-0 state,
//   4. grade transition-fault coverage,
//   5. replay the whole session cycle-accurately (TPG -> circuit -> MISR)
//      and print the golden signature.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "bist/functional_bist.hpp"
#include "bist/session.hpp"
#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/scan.hpp"

int main() {
  // 1. The circuit: the genuine ISCAS89 s27 netlist.
  const fbt::Netlist circuit = fbt::make_s27();
  std::printf("circuit %s: %zu PIs, %zu POs, %zu flops, %zu gates\n",
              circuit.name().c_str(), circuit.num_inputs(),
              circuit.num_outputs(), circuit.num_flops(),
              circuit.num_gates());

  // 2-3. On-chip generation. `bounded = false` reproduces the target paper's
  // unconstrained setting; see examples/embedded_block_bist.cpp for the
  // primary-input-constrained flow.
  fbt::FunctionalBistConfig config;
  config.segment_length = 200;  // L
  config.bounded = false;
  fbt::FunctionalBistGenerator generator(circuit, config);
  std::printf("TPG: %u-stage LFSR, %zu-bit shift register, %zu biasing "
              "gates\n",
              config.tpg.lfsr_stages, generator.tpg().shift_register_size(),
              generator.tpg().bias_gate_count());

  const fbt::TransitionFaultList faults =
      fbt::TransitionFaultList::collapsed(circuit);
  std::vector<std::uint32_t> detected(faults.size(), 0);
  const fbt::FunctionalBistResult run = generator.run(faults, detected);

  // 4. Coverage. Every test is a functional broadside test: its scan-in
  // state lies on a functional trajectory from the reset state.
  std::size_t covered = 0;
  for (const std::uint32_t c : detected) covered += (c >= 1);
  std::printf("applied %zu tests from %zu seeds; transition fault coverage "
              "%zu/%zu = %.1f%%\n",
              run.num_tests, run.num_seeds, covered, faults.size(),
              100.0 * covered / faults.size());

  // 5. Cycle-accurate session with MISR response compaction.
  const fbt::ScanChains scan(circuit, {});
  const fbt::SessionReport session =
      fbt::run_bist_session(circuit, run, scan, {});
  std::printf("session: %zu total cycles (%zu functional + %zu shift), "
              "golden signature 0x%08x\n",
              session.total_cycles, session.functional_cycles,
              session.shift_cycles, session.signature);
  return 0;
}
