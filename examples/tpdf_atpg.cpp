// Deterministic ATPG for transition path delay faults (dissertation
// Chapter 2): enumerate paths, run the five-sub-procedure engine, and show a
// generated two-pattern test for one detected fault.
//
// Run: ./build/examples/tpdf_atpg [--circuit s298]
#include <cstdio>

#include "atpg/tpdf_engine.hpp"
#include "circuits/registry.hpp"
#include "fault/fault_sim.hpp"
#include "util/cli.hpp"

namespace {

void print_pattern(const char* label, const std::vector<std::uint8_t>& bits) {
  std::printf("  %s = ", label);
  for (const std::uint8_t b : bits) std::printf("%c", b ? '1' : '0');
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const fbt::Cli cli(argc, argv);
  const std::string name = cli.get("circuit", "s298");
  const fbt::Netlist circuit = fbt::load_benchmark(name);

  const fbt::PathEnumeration paths = fbt::enumerate_all_paths(circuit, 1500);
  std::vector<fbt::PathDelayFault> faults;
  for (const fbt::Path& p : paths.paths) {
    faults.push_back({p, true});
    faults.push_back({p, false});
  }
  std::printf("%s: %zu paths%s -> %zu transition path delay faults\n",
              name.c_str(), paths.paths.size(),
              paths.complete ? "" : " (capped)", faults.size());

  fbt::TpdfEngine engine(circuit, {});
  const fbt::TpdfRunReport report = engine.run(faults);
  std::printf("detected %zu, undetectable %zu, aborted %zu\n",
              report.detected, report.undetectable, report.aborted);
  std::printf("  by fault simulation of transition-fault tests: %zu\n",
              report.detected_fsim);
  std::printf("  by the dynamic-compaction heuristic:           %zu\n",
              report.detected_heuristic);
  std::printf("  by branch-and-bound:                           %zu\n",
              report.detected_bnb);

  // Show one detected fault and verify its test.
  fbt::BroadsideFaultSim fsim(circuit);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (report.per_fault[i].status != fbt::TpdfStatus::kDetected) continue;
    if (report.per_fault[i].phase != fbt::TpdfPhase::kBranchBound &&
        report.per_fault[i].phase != fbt::TpdfPhase::kHeuristic) {
      continue;
    }
    std::printf("\nexample: %s\n",
                path_fault_name(circuit, faults[i]).c_str());
    const auto trs = transition_faults_along(circuit, faults[i]);
    for (const fbt::BroadsideTest& test : report.tests) {
      bool all = true;
      for (const fbt::TransitionFault& tf : trs) {
        if (!fsim.detects(test, tf)) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      std::printf("detected by the broadside test <s1, v1, v2>:\n");
      print_pattern("s1", test.scan_state);
      print_pattern("v1", test.v1);
      print_pattern("v2", test.v2);
      std::printf("(every transition fault along the path is detected by "
                  "this same test)\n");
      break;
    }
    break;
  }
  return 0;
}
