file(REMOVE_RECURSE
  "CMakeFiles/atpg_test.dir/atpg/implicator_property_test.cpp.o"
  "CMakeFiles/atpg_test.dir/atpg/implicator_property_test.cpp.o.d"
  "CMakeFiles/atpg_test.dir/atpg/implicator_test.cpp.o"
  "CMakeFiles/atpg_test.dir/atpg/implicator_test.cpp.o.d"
  "CMakeFiles/atpg_test.dir/atpg/necessary_test.cpp.o"
  "CMakeFiles/atpg_test.dir/atpg/necessary_test.cpp.o.d"
  "CMakeFiles/atpg_test.dir/atpg/podem_test.cpp.o"
  "CMakeFiles/atpg_test.dir/atpg/podem_test.cpp.o.d"
  "CMakeFiles/atpg_test.dir/atpg/tpdf_engine_test.cpp.o"
  "CMakeFiles/atpg_test.dir/atpg/tpdf_engine_test.cpp.o.d"
  "CMakeFiles/atpg_test.dir/atpg/tpdf_incremental_test.cpp.o"
  "CMakeFiles/atpg_test.dir/atpg/tpdf_incremental_test.cpp.o.d"
  "atpg_test"
  "atpg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
