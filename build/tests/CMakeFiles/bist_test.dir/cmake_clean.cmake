file(REMOVE_RECURSE
  "CMakeFiles/bist_test.dir/bist/aliasing_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/aliasing_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/area_model_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/area_model_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/controller_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/controller_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/counters_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/counters_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/determinism_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/determinism_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/functional_bist_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/functional_bist_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/lfsr_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/lfsr_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/misr_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/misr_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/session_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/session_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/signal_transitions_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/signal_transitions_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/state_holding_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/state_holding_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/tpg_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/tpg_test.cpp.o.d"
  "CMakeFiles/bist_test.dir/bist/tpg_variants_test.cpp.o"
  "CMakeFiles/bist_test.dir/bist/tpg_variants_test.cpp.o.d"
  "bist_test"
  "bist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
