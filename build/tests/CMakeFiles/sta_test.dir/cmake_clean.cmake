file(REMOVE_RECURSE
  "CMakeFiles/sta_test.dir/sta/delay_library_test.cpp.o"
  "CMakeFiles/sta_test.dir/sta/delay_library_test.cpp.o.d"
  "CMakeFiles/sta_test.dir/sta/path_selection_test.cpp.o"
  "CMakeFiles/sta_test.dir/sta/path_selection_test.cpp.o.d"
  "CMakeFiles/sta_test.dir/sta/timing_graph_test.cpp.o"
  "CMakeFiles/sta_test.dir/sta/timing_graph_test.cpp.o.d"
  "CMakeFiles/sta_test.dir/sta/timing_property_test.cpp.o"
  "CMakeFiles/sta_test.dir/sta/timing_property_test.cpp.o.d"
  "CMakeFiles/sta_test.dir/sta/timing_report_test.cpp.o"
  "CMakeFiles/sta_test.dir/sta/timing_report_test.cpp.o.d"
  "sta_test"
  "sta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
