file(REMOVE_RECURSE
  "CMakeFiles/multiclock_test.dir/multiclock/multiclock_test.cpp.o"
  "CMakeFiles/multiclock_test.dir/multiclock/multiclock_test.cpp.o.d"
  "multiclock_test"
  "multiclock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
