# Empty compiler generated dependencies file for multiclock_test.
# This may be replaced when dependencies are built.
