file(REMOVE_RECURSE
  "CMakeFiles/fault_test.dir/fault/chapter1_figures_test.cpp.o"
  "CMakeFiles/fault_test.dir/fault/chapter1_figures_test.cpp.o.d"
  "CMakeFiles/fault_test.dir/fault/collapse_property_test.cpp.o"
  "CMakeFiles/fault_test.dir/fault/collapse_property_test.cpp.o.d"
  "CMakeFiles/fault_test.dir/fault/compaction_test.cpp.o"
  "CMakeFiles/fault_test.dir/fault/compaction_test.cpp.o.d"
  "CMakeFiles/fault_test.dir/fault/diagnosis_test.cpp.o"
  "CMakeFiles/fault_test.dir/fault/diagnosis_test.cpp.o.d"
  "CMakeFiles/fault_test.dir/fault/fault_sim_test.cpp.o"
  "CMakeFiles/fault_test.dir/fault/fault_sim_test.cpp.o.d"
  "CMakeFiles/fault_test.dir/fault/fault_test.cpp.o"
  "CMakeFiles/fault_test.dir/fault/fault_test.cpp.o.d"
  "CMakeFiles/fault_test.dir/fault/scan_test_types_test.cpp.o"
  "CMakeFiles/fault_test.dir/fault/scan_test_types_test.cpp.o.d"
  "fault_test"
  "fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
