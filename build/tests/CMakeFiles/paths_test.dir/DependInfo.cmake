
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/paths/classify_property_test.cpp" "tests/CMakeFiles/paths_test.dir/paths/classify_property_test.cpp.o" "gcc" "tests/CMakeFiles/paths_test.dir/paths/classify_property_test.cpp.o.d"
  "/root/repo/tests/paths/classify_test.cpp" "tests/CMakeFiles/paths_test.dir/paths/classify_test.cpp.o" "gcc" "tests/CMakeFiles/paths_test.dir/paths/classify_test.cpp.o.d"
  "/root/repo/tests/paths/path_test.cpp" "tests/CMakeFiles/paths_test.dir/paths/path_test.cpp.o" "gcc" "tests/CMakeFiles/paths_test.dir/paths/path_test.cpp.o.d"
  "/root/repo/tests/paths/segments_test.cpp" "tests/CMakeFiles/paths_test.dir/paths/segments_test.cpp.o" "gcc" "tests/CMakeFiles/paths_test.dir/paths/segments_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fbt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fbt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/fbt_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fbt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/fbt_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/fbt_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/fbt_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/fbt_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/fbt_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/fbt_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/multiclock/CMakeFiles/fbt_multiclock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
