# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(netlist_test "/root/repo/build/tests/netlist_test")
set_tests_properties(netlist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(circuits_test "/root/repo/build/tests/circuits_test")
set_tests_properties(circuits_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fault_test "/root/repo/build/tests/fault_test")
set_tests_properties(fault_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(atpg_test "/root/repo/build/tests/atpg_test")
set_tests_properties(atpg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(paths_test "/root/repo/build/tests/paths_test")
set_tests_properties(paths_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sta_test "/root/repo/build/tests/sta_test")
set_tests_properties(sta_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bist_test "/root/repo/build/tests/bist_test")
set_tests_properties(bist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(multiclock_test "/root/repo/build/tests/multiclock_test")
set_tests_properties(multiclock_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flow_test "/root/repo/build/tests/flow_test")
set_tests_properties(flow_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;fbt_add_test;/root/repo/tests/CMakeLists.txt;0;")
