file(REMOVE_RECURSE
  "CMakeFiles/critical_path_selection.dir/critical_path_selection.cpp.o"
  "CMakeFiles/critical_path_selection.dir/critical_path_selection.cpp.o.d"
  "critical_path_selection"
  "critical_path_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_path_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
