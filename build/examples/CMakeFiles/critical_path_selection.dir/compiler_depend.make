# Empty compiler generated dependencies file for critical_path_selection.
# This may be replaced when dependencies are built.
