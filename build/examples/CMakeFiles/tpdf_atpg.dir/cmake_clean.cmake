file(REMOVE_RECURSE
  "CMakeFiles/tpdf_atpg.dir/tpdf_atpg.cpp.o"
  "CMakeFiles/tpdf_atpg.dir/tpdf_atpg.cpp.o.d"
  "tpdf_atpg"
  "tpdf_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdf_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
