# Empty compiler generated dependencies file for tpdf_atpg.
# This may be replaced when dependencies are built.
