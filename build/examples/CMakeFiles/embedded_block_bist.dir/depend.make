# Empty dependencies file for embedded_block_bist.
# This may be replaced when dependencies are built.
