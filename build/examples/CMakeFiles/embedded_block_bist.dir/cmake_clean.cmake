file(REMOVE_RECURSE
  "CMakeFiles/embedded_block_bist.dir/embedded_block_bist.cpp.o"
  "CMakeFiles/embedded_block_bist.dir/embedded_block_bist.cpp.o.d"
  "embedded_block_bist"
  "embedded_block_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_block_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
