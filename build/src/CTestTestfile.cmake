# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netlist")
subdirs("circuits")
subdirs("sim")
subdirs("fault")
subdirs("atpg")
subdirs("paths")
subdirs("sta")
subdirs("bist")
subdirs("multiclock")
subdirs("flow")
