file(REMOVE_RECURSE
  "libfbt_paths.a"
)
