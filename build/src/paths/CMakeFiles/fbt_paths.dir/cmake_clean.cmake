file(REMOVE_RECURSE
  "CMakeFiles/fbt_paths.dir/classify.cpp.o"
  "CMakeFiles/fbt_paths.dir/classify.cpp.o.d"
  "CMakeFiles/fbt_paths.dir/path.cpp.o"
  "CMakeFiles/fbt_paths.dir/path.cpp.o.d"
  "CMakeFiles/fbt_paths.dir/segments.cpp.o"
  "CMakeFiles/fbt_paths.dir/segments.cpp.o.d"
  "libfbt_paths.a"
  "libfbt_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
