
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paths/classify.cpp" "src/paths/CMakeFiles/fbt_paths.dir/classify.cpp.o" "gcc" "src/paths/CMakeFiles/fbt_paths.dir/classify.cpp.o.d"
  "/root/repo/src/paths/path.cpp" "src/paths/CMakeFiles/fbt_paths.dir/path.cpp.o" "gcc" "src/paths/CMakeFiles/fbt_paths.dir/path.cpp.o.d"
  "/root/repo/src/paths/segments.cpp" "src/paths/CMakeFiles/fbt_paths.dir/segments.cpp.o" "gcc" "src/paths/CMakeFiles/fbt_paths.dir/segments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fbt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/fbt_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fbt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
