# Empty dependencies file for fbt_paths.
# This may be replaced when dependencies are built.
