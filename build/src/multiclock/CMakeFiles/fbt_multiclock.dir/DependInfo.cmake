
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multiclock/clock_domains.cpp" "src/multiclock/CMakeFiles/fbt_multiclock.dir/clock_domains.cpp.o" "gcc" "src/multiclock/CMakeFiles/fbt_multiclock.dir/clock_domains.cpp.o.d"
  "/root/repo/src/multiclock/multiclock_sim.cpp" "src/multiclock/CMakeFiles/fbt_multiclock.dir/multiclock_sim.cpp.o" "gcc" "src/multiclock/CMakeFiles/fbt_multiclock.dir/multiclock_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fbt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fbt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/fbt_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
