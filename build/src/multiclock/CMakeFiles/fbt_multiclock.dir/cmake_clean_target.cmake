file(REMOVE_RECURSE
  "libfbt_multiclock.a"
)
