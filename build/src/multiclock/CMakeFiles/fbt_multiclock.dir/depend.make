# Empty dependencies file for fbt_multiclock.
# This may be replaced when dependencies are built.
