file(REMOVE_RECURSE
  "CMakeFiles/fbt_multiclock.dir/clock_domains.cpp.o"
  "CMakeFiles/fbt_multiclock.dir/clock_domains.cpp.o.d"
  "CMakeFiles/fbt_multiclock.dir/multiclock_sim.cpp.o"
  "CMakeFiles/fbt_multiclock.dir/multiclock_sim.cpp.o.d"
  "libfbt_multiclock.a"
  "libfbt_multiclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_multiclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
