# Empty dependencies file for fbt_flow.
# This may be replaced when dependencies are built.
