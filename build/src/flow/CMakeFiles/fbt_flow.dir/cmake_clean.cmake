file(REMOVE_RECURSE
  "CMakeFiles/fbt_flow.dir/bist_flow.cpp.o"
  "CMakeFiles/fbt_flow.dir/bist_flow.cpp.o.d"
  "libfbt_flow.a"
  "libfbt_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
