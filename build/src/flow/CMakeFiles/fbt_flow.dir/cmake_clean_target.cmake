file(REMOVE_RECURSE
  "libfbt_flow.a"
)
