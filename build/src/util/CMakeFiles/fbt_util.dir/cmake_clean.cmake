file(REMOVE_RECURSE
  "CMakeFiles/fbt_util.dir/cli.cpp.o"
  "CMakeFiles/fbt_util.dir/cli.cpp.o.d"
  "CMakeFiles/fbt_util.dir/table.cpp.o"
  "CMakeFiles/fbt_util.dir/table.cpp.o.d"
  "libfbt_util.a"
  "libfbt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
