file(REMOVE_RECURSE
  "libfbt_util.a"
)
