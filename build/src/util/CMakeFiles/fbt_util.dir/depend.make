# Empty dependencies file for fbt_util.
# This may be replaced when dependencies are built.
