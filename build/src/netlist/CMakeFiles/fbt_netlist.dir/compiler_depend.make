# Empty compiler generated dependencies file for fbt_netlist.
# This may be replaced when dependencies are built.
