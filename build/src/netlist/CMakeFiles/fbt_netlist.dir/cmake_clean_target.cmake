file(REMOVE_RECURSE
  "libfbt_netlist.a"
)
