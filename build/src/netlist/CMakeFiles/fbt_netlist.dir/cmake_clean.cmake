file(REMOVE_RECURSE
  "CMakeFiles/fbt_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/fbt_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/fbt_netlist.dir/export.cpp.o"
  "CMakeFiles/fbt_netlist.dir/export.cpp.o.d"
  "CMakeFiles/fbt_netlist.dir/gate_type.cpp.o"
  "CMakeFiles/fbt_netlist.dir/gate_type.cpp.o.d"
  "CMakeFiles/fbt_netlist.dir/netlist.cpp.o"
  "CMakeFiles/fbt_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/fbt_netlist.dir/scan.cpp.o"
  "CMakeFiles/fbt_netlist.dir/scan.cpp.o.d"
  "libfbt_netlist.a"
  "libfbt_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
