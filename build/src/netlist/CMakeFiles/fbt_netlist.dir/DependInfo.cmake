
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_io.cpp" "src/netlist/CMakeFiles/fbt_netlist.dir/bench_io.cpp.o" "gcc" "src/netlist/CMakeFiles/fbt_netlist.dir/bench_io.cpp.o.d"
  "/root/repo/src/netlist/export.cpp" "src/netlist/CMakeFiles/fbt_netlist.dir/export.cpp.o" "gcc" "src/netlist/CMakeFiles/fbt_netlist.dir/export.cpp.o.d"
  "/root/repo/src/netlist/gate_type.cpp" "src/netlist/CMakeFiles/fbt_netlist.dir/gate_type.cpp.o" "gcc" "src/netlist/CMakeFiles/fbt_netlist.dir/gate_type.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/fbt_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/fbt_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/scan.cpp" "src/netlist/CMakeFiles/fbt_netlist.dir/scan.cpp.o" "gcc" "src/netlist/CMakeFiles/fbt_netlist.dir/scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fbt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
