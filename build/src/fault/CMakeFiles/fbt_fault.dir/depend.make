# Empty dependencies file for fbt_fault.
# This may be replaced when dependencies are built.
