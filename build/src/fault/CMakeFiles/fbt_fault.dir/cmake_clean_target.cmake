file(REMOVE_RECURSE
  "libfbt_fault.a"
)
