
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/compaction.cpp" "src/fault/CMakeFiles/fbt_fault.dir/compaction.cpp.o" "gcc" "src/fault/CMakeFiles/fbt_fault.dir/compaction.cpp.o.d"
  "/root/repo/src/fault/diagnosis.cpp" "src/fault/CMakeFiles/fbt_fault.dir/diagnosis.cpp.o" "gcc" "src/fault/CMakeFiles/fbt_fault.dir/diagnosis.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/fault/CMakeFiles/fbt_fault.dir/fault.cpp.o" "gcc" "src/fault/CMakeFiles/fbt_fault.dir/fault.cpp.o.d"
  "/root/repo/src/fault/fault_sim.cpp" "src/fault/CMakeFiles/fbt_fault.dir/fault_sim.cpp.o" "gcc" "src/fault/CMakeFiles/fbt_fault.dir/fault_sim.cpp.o.d"
  "/root/repo/src/fault/scan_test_types.cpp" "src/fault/CMakeFiles/fbt_fault.dir/scan_test_types.cpp.o" "gcc" "src/fault/CMakeFiles/fbt_fault.dir/scan_test_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fbt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fbt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
