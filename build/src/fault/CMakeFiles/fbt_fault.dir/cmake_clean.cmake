file(REMOVE_RECURSE
  "CMakeFiles/fbt_fault.dir/compaction.cpp.o"
  "CMakeFiles/fbt_fault.dir/compaction.cpp.o.d"
  "CMakeFiles/fbt_fault.dir/diagnosis.cpp.o"
  "CMakeFiles/fbt_fault.dir/diagnosis.cpp.o.d"
  "CMakeFiles/fbt_fault.dir/fault.cpp.o"
  "CMakeFiles/fbt_fault.dir/fault.cpp.o.d"
  "CMakeFiles/fbt_fault.dir/fault_sim.cpp.o"
  "CMakeFiles/fbt_fault.dir/fault_sim.cpp.o.d"
  "CMakeFiles/fbt_fault.dir/scan_test_types.cpp.o"
  "CMakeFiles/fbt_fault.dir/scan_test_types.cpp.o.d"
  "libfbt_fault.a"
  "libfbt_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
