
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bitsim.cpp" "src/sim/CMakeFiles/fbt_sim.dir/bitsim.cpp.o" "gcc" "src/sim/CMakeFiles/fbt_sim.dir/bitsim.cpp.o.d"
  "/root/repo/src/sim/cubesim.cpp" "src/sim/CMakeFiles/fbt_sim.dir/cubesim.cpp.o" "gcc" "src/sim/CMakeFiles/fbt_sim.dir/cubesim.cpp.o.d"
  "/root/repo/src/sim/seqsim.cpp" "src/sim/CMakeFiles/fbt_sim.dir/seqsim.cpp.o" "gcc" "src/sim/CMakeFiles/fbt_sim.dir/seqsim.cpp.o.d"
  "/root/repo/src/sim/value.cpp" "src/sim/CMakeFiles/fbt_sim.dir/value.cpp.o" "gcc" "src/sim/CMakeFiles/fbt_sim.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fbt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
