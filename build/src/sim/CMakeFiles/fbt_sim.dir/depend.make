# Empty dependencies file for fbt_sim.
# This may be replaced when dependencies are built.
