file(REMOVE_RECURSE
  "libfbt_sim.a"
)
