file(REMOVE_RECURSE
  "CMakeFiles/fbt_sim.dir/bitsim.cpp.o"
  "CMakeFiles/fbt_sim.dir/bitsim.cpp.o.d"
  "CMakeFiles/fbt_sim.dir/cubesim.cpp.o"
  "CMakeFiles/fbt_sim.dir/cubesim.cpp.o.d"
  "CMakeFiles/fbt_sim.dir/seqsim.cpp.o"
  "CMakeFiles/fbt_sim.dir/seqsim.cpp.o.d"
  "CMakeFiles/fbt_sim.dir/value.cpp.o"
  "CMakeFiles/fbt_sim.dir/value.cpp.o.d"
  "libfbt_sim.a"
  "libfbt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
