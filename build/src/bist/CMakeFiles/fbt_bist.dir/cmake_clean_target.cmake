file(REMOVE_RECURSE
  "libfbt_bist.a"
)
