
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bist/aliasing.cpp" "src/bist/CMakeFiles/fbt_bist.dir/aliasing.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/aliasing.cpp.o.d"
  "/root/repo/src/bist/area_model.cpp" "src/bist/CMakeFiles/fbt_bist.dir/area_model.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/area_model.cpp.o.d"
  "/root/repo/src/bist/controller.cpp" "src/bist/CMakeFiles/fbt_bist.dir/controller.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/controller.cpp.o.d"
  "/root/repo/src/bist/embedded.cpp" "src/bist/CMakeFiles/fbt_bist.dir/embedded.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/embedded.cpp.o.d"
  "/root/repo/src/bist/functional_bist.cpp" "src/bist/CMakeFiles/fbt_bist.dir/functional_bist.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/functional_bist.cpp.o.d"
  "/root/repo/src/bist/hardware_plan.cpp" "src/bist/CMakeFiles/fbt_bist.dir/hardware_plan.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/hardware_plan.cpp.o.d"
  "/root/repo/src/bist/input_cube.cpp" "src/bist/CMakeFiles/fbt_bist.dir/input_cube.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/input_cube.cpp.o.d"
  "/root/repo/src/bist/lfsr.cpp" "src/bist/CMakeFiles/fbt_bist.dir/lfsr.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/lfsr.cpp.o.d"
  "/root/repo/src/bist/misr.cpp" "src/bist/CMakeFiles/fbt_bist.dir/misr.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/misr.cpp.o.d"
  "/root/repo/src/bist/session.cpp" "src/bist/CMakeFiles/fbt_bist.dir/session.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/session.cpp.o.d"
  "/root/repo/src/bist/signal_transitions.cpp" "src/bist/CMakeFiles/fbt_bist.dir/signal_transitions.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/signal_transitions.cpp.o.d"
  "/root/repo/src/bist/state_holding.cpp" "src/bist/CMakeFiles/fbt_bist.dir/state_holding.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/state_holding.cpp.o.d"
  "/root/repo/src/bist/tpg.cpp" "src/bist/CMakeFiles/fbt_bist.dir/tpg.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/tpg.cpp.o.d"
  "/root/repo/src/bist/tpg_variants.cpp" "src/bist/CMakeFiles/fbt_bist.dir/tpg_variants.cpp.o" "gcc" "src/bist/CMakeFiles/fbt_bist.dir/tpg_variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fbt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fbt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/fbt_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
