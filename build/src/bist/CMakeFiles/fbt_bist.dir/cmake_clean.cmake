file(REMOVE_RECURSE
  "CMakeFiles/fbt_bist.dir/aliasing.cpp.o"
  "CMakeFiles/fbt_bist.dir/aliasing.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/area_model.cpp.o"
  "CMakeFiles/fbt_bist.dir/area_model.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/controller.cpp.o"
  "CMakeFiles/fbt_bist.dir/controller.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/embedded.cpp.o"
  "CMakeFiles/fbt_bist.dir/embedded.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/functional_bist.cpp.o"
  "CMakeFiles/fbt_bist.dir/functional_bist.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/hardware_plan.cpp.o"
  "CMakeFiles/fbt_bist.dir/hardware_plan.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/input_cube.cpp.o"
  "CMakeFiles/fbt_bist.dir/input_cube.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/lfsr.cpp.o"
  "CMakeFiles/fbt_bist.dir/lfsr.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/misr.cpp.o"
  "CMakeFiles/fbt_bist.dir/misr.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/session.cpp.o"
  "CMakeFiles/fbt_bist.dir/session.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/signal_transitions.cpp.o"
  "CMakeFiles/fbt_bist.dir/signal_transitions.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/state_holding.cpp.o"
  "CMakeFiles/fbt_bist.dir/state_holding.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/tpg.cpp.o"
  "CMakeFiles/fbt_bist.dir/tpg.cpp.o.d"
  "CMakeFiles/fbt_bist.dir/tpg_variants.cpp.o"
  "CMakeFiles/fbt_bist.dir/tpg_variants.cpp.o.d"
  "libfbt_bist.a"
  "libfbt_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
