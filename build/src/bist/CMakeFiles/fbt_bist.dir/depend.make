# Empty dependencies file for fbt_bist.
# This may be replaced when dependencies are built.
