# Empty dependencies file for fbt_circuits.
# This may be replaced when dependencies are built.
