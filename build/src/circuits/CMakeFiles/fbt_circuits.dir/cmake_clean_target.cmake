file(REMOVE_RECURSE
  "libfbt_circuits.a"
)
