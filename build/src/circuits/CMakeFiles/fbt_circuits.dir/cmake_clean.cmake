file(REMOVE_RECURSE
  "CMakeFiles/fbt_circuits.dir/registry.cpp.o"
  "CMakeFiles/fbt_circuits.dir/registry.cpp.o.d"
  "CMakeFiles/fbt_circuits.dir/s27.cpp.o"
  "CMakeFiles/fbt_circuits.dir/s27.cpp.o.d"
  "CMakeFiles/fbt_circuits.dir/synth.cpp.o"
  "CMakeFiles/fbt_circuits.dir/synth.cpp.o.d"
  "libfbt_circuits.a"
  "libfbt_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
