
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/registry.cpp" "src/circuits/CMakeFiles/fbt_circuits.dir/registry.cpp.o" "gcc" "src/circuits/CMakeFiles/fbt_circuits.dir/registry.cpp.o.d"
  "/root/repo/src/circuits/s27.cpp" "src/circuits/CMakeFiles/fbt_circuits.dir/s27.cpp.o" "gcc" "src/circuits/CMakeFiles/fbt_circuits.dir/s27.cpp.o.d"
  "/root/repo/src/circuits/synth.cpp" "src/circuits/CMakeFiles/fbt_circuits.dir/synth.cpp.o" "gcc" "src/circuits/CMakeFiles/fbt_circuits.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fbt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
