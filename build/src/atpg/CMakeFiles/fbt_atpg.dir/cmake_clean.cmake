file(REMOVE_RECURSE
  "CMakeFiles/fbt_atpg.dir/implicator.cpp.o"
  "CMakeFiles/fbt_atpg.dir/implicator.cpp.o.d"
  "CMakeFiles/fbt_atpg.dir/necessary.cpp.o"
  "CMakeFiles/fbt_atpg.dir/necessary.cpp.o.d"
  "CMakeFiles/fbt_atpg.dir/podem.cpp.o"
  "CMakeFiles/fbt_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/fbt_atpg.dir/tpdf_engine.cpp.o"
  "CMakeFiles/fbt_atpg.dir/tpdf_engine.cpp.o.d"
  "libfbt_atpg.a"
  "libfbt_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
