file(REMOVE_RECURSE
  "libfbt_atpg.a"
)
