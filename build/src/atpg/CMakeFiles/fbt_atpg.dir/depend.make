# Empty dependencies file for fbt_atpg.
# This may be replaced when dependencies are built.
