file(REMOVE_RECURSE
  "libfbt_sta.a"
)
