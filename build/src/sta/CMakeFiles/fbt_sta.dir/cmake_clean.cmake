file(REMOVE_RECURSE
  "CMakeFiles/fbt_sta.dir/delay_library.cpp.o"
  "CMakeFiles/fbt_sta.dir/delay_library.cpp.o.d"
  "CMakeFiles/fbt_sta.dir/path_selection.cpp.o"
  "CMakeFiles/fbt_sta.dir/path_selection.cpp.o.d"
  "CMakeFiles/fbt_sta.dir/timing_graph.cpp.o"
  "CMakeFiles/fbt_sta.dir/timing_graph.cpp.o.d"
  "CMakeFiles/fbt_sta.dir/timing_report.cpp.o"
  "CMakeFiles/fbt_sta.dir/timing_report.cpp.o.d"
  "libfbt_sta.a"
  "libfbt_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbt_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
