# Empty dependencies file for fbt_sta.
# This may be replaced when dependencies are built.
