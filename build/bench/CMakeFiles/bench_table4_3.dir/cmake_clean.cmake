file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_3.dir/table4_3.cpp.o"
  "CMakeFiles/bench_table4_3.dir/table4_3.cpp.o.d"
  "bench_table4_3"
  "bench_table4_3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
