# Empty compiler generated dependencies file for bench_table2_2_4_6.
# This may be replaced when dependencies are built.
