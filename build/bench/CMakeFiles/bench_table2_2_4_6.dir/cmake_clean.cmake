file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_2_4_6.dir/table2_large.cpp.o"
  "CMakeFiles/bench_table2_2_4_6.dir/table2_large.cpp.o.d"
  "bench_table2_2_4_6"
  "bench_table2_2_4_6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_2_4_6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
