# Empty compiler generated dependencies file for bench_fig4_hw.
# This may be replaced when dependencies are built.
