file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_hw.dir/fig4_hw.cpp.o"
  "CMakeFiles/bench_fig4_hw.dir/fig4_hw.cpp.o.d"
  "bench_fig4_hw"
  "bench_fig4_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
