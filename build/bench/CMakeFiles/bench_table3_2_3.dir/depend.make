# Empty dependencies file for bench_table3_2_3.
# This may be replaced when dependencies are built.
