file(REMOVE_RECURSE
  "CMakeFiles/bench_multiclock.dir/multiclock.cpp.o"
  "CMakeFiles/bench_multiclock.dir/multiclock.cpp.o.d"
  "bench_multiclock"
  "bench_multiclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
