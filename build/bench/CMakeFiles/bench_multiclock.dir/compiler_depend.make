# Empty compiler generated dependencies file for bench_multiclock.
# This may be replaced when dependencies are built.
