file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_1_3_5.dir/table2_small.cpp.o"
  "CMakeFiles/bench_table2_1_3_5.dir/table2_small.cpp.o.d"
  "bench_table2_1_3_5"
  "bench_table2_1_3_5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_1_3_5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
