# Empty dependencies file for bench_table2_1_3_5.
# This may be replaced when dependencies are built.
