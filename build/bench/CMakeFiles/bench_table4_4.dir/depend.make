# Empty dependencies file for bench_table4_4.
# This may be replaced when dependencies are built.
